file(REMOVE_RECURSE
  "CMakeFiles/sda_stats.dir/cdf.cpp.o"
  "CMakeFiles/sda_stats.dir/cdf.cpp.o.d"
  "CMakeFiles/sda_stats.dir/csv.cpp.o"
  "CMakeFiles/sda_stats.dir/csv.cpp.o.d"
  "CMakeFiles/sda_stats.dir/histogram.cpp.o"
  "CMakeFiles/sda_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/sda_stats.dir/summary.cpp.o"
  "CMakeFiles/sda_stats.dir/summary.cpp.o.d"
  "CMakeFiles/sda_stats.dir/table.cpp.o"
  "CMakeFiles/sda_stats.dir/table.cpp.o.d"
  "CMakeFiles/sda_stats.dir/timeseries.cpp.o"
  "CMakeFiles/sda_stats.dir/timeseries.cpp.o.d"
  "libsda_stats.a"
  "libsda_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
