file(REMOVE_RECURSE
  "libsda_net.a"
)
