# Empty compiler generated dependencies file for sda_net.
# This may be replaced when dependencies are built.
