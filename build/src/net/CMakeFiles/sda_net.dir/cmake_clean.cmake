file(REMOVE_RECURSE
  "CMakeFiles/sda_net.dir/checksum.cpp.o"
  "CMakeFiles/sda_net.dir/checksum.cpp.o.d"
  "CMakeFiles/sda_net.dir/eid.cpp.o"
  "CMakeFiles/sda_net.dir/eid.cpp.o.d"
  "CMakeFiles/sda_net.dir/headers.cpp.o"
  "CMakeFiles/sda_net.dir/headers.cpp.o.d"
  "CMakeFiles/sda_net.dir/ip_address.cpp.o"
  "CMakeFiles/sda_net.dir/ip_address.cpp.o.d"
  "CMakeFiles/sda_net.dir/mac_address.cpp.o"
  "CMakeFiles/sda_net.dir/mac_address.cpp.o.d"
  "CMakeFiles/sda_net.dir/packet.cpp.o"
  "CMakeFiles/sda_net.dir/packet.cpp.o.d"
  "CMakeFiles/sda_net.dir/prefix.cpp.o"
  "CMakeFiles/sda_net.dir/prefix.cpp.o.d"
  "libsda_net.a"
  "libsda_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
