
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/underlay/linkstate.cpp" "src/underlay/CMakeFiles/sda_underlay.dir/linkstate.cpp.o" "gcc" "src/underlay/CMakeFiles/sda_underlay.dir/linkstate.cpp.o.d"
  "/root/repo/src/underlay/network.cpp" "src/underlay/CMakeFiles/sda_underlay.dir/network.cpp.o" "gcc" "src/underlay/CMakeFiles/sda_underlay.dir/network.cpp.o.d"
  "/root/repo/src/underlay/spf.cpp" "src/underlay/CMakeFiles/sda_underlay.dir/spf.cpp.o" "gcc" "src/underlay/CMakeFiles/sda_underlay.dir/spf.cpp.o.d"
  "/root/repo/src/underlay/topology.cpp" "src/underlay/CMakeFiles/sda_underlay.dir/topology.cpp.o" "gcc" "src/underlay/CMakeFiles/sda_underlay.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sda_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
