file(REMOVE_RECURSE
  "CMakeFiles/sda_underlay.dir/linkstate.cpp.o"
  "CMakeFiles/sda_underlay.dir/linkstate.cpp.o.d"
  "CMakeFiles/sda_underlay.dir/network.cpp.o"
  "CMakeFiles/sda_underlay.dir/network.cpp.o.d"
  "CMakeFiles/sda_underlay.dir/spf.cpp.o"
  "CMakeFiles/sda_underlay.dir/spf.cpp.o.d"
  "CMakeFiles/sda_underlay.dir/topology.cpp.o"
  "CMakeFiles/sda_underlay.dir/topology.cpp.o.d"
  "libsda_underlay.a"
  "libsda_underlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_underlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
