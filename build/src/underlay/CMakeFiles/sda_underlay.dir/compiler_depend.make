# Empty compiler generated dependencies file for sda_underlay.
# This may be replaced when dependencies are built.
