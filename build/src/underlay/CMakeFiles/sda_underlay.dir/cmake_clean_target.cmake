file(REMOVE_RECURSE
  "libsda_underlay.a"
)
