// Quickstart: the smallest useful SDA fabric.
//
// Builds one border + two edges, declares a VN and a group policy, onboards
// two endpoints, and sends traffic — showing the reactive resolution on the
// first packet and the direct encapsulated path afterwards.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "fabric/fabric.hpp"

using namespace sda;

int main() {
  // Every fabric runs on a deterministic discrete-event simulator.
  sim::Simulator sim;
  fabric::SdaFabric fabric{sim, fabric::FabricConfig{}};

  // 1. Physical build-out: routers and underlay links.
  fabric.add_border("border");
  fabric.add_edge("edge-west");
  fabric.add_edge("edge-east");
  fabric.link("edge-west", "border", std::chrono::microseconds{50});
  fabric.link("edge-east", "border", std::chrono::microseconds{50});
  fabric.finalize();

  // 2. Declarative intent: one VN, its address pool, one deny rule.
  const net::VnId corp{100};
  const net::GroupId employees{10};
  const net::GroupId printers{20};
  fabric.define_vn({corp, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  fabric.set_rule({corp, printers, employees, policy::Action::Deny});  // printers can't probe laptops
  fabric.add_external_prefix(corp, *net::Ipv4Prefix::parse("0.0.0.0/0"));

  // 3. Endpoint identities (credential -> VN + group).
  const auto alice_mac = net::MacAddress::from_u64(0x020000000001);
  const auto printer_mac = net::MacAddress::from_u64(0x020000000002);
  fabric.provision_endpoint({"alice", "pw", alice_mac, corp, employees});
  fabric.provision_endpoint({"printer", "pw", printer_mac, corp, printers});

  // 4. Plug them in: detection, RADIUS auth, rule download, DHCP, and
  //    location registration all run on the simulator (paper Fig. 3).
  net::Ipv4Address alice_ip, printer_ip;
  fabric.connect_endpoint("alice", "edge-west", 1, [&](const fabric::OnboardResult& r) {
    alice_ip = r.ip;
    std::printf("onboarded %-8s ip=%-12s group=%u edge=%s in %.2f ms\n", r.credential.c_str(),
                r.ip.to_string().c_str(), r.group.value(), r.edge.c_str(),
                static_cast<double>(r.elapsed.count()) / 1e6);
  });
  fabric.connect_endpoint("printer", "edge-east", 1, [&](const fabric::OnboardResult& r) {
    printer_ip = r.ip;
    std::printf("onboarded %-8s ip=%-12s group=%u edge=%s in %.2f ms\n", r.credential.c_str(),
                r.ip.to_string().c_str(), r.group.value(), r.edge.c_str(),
                static_cast<double>(r.elapsed.count()) / 1e6);
  });
  sim.run();

  fabric.set_delivery_listener([&](const dataplane::AttachedEndpoint& to,
                                   const net::OverlayFrame& f, sim::SimTime at) {
    std::printf("[%s] delivered %u bytes to %s\n", at.to_string().c_str(),
                f.ip().payload_size, to.credential.c_str());
  });

  // 5. Traffic. First packet: map-cache miss -> default route through the
  //    border while the routing server answers; second packet: direct.
  std::printf("\nalice -> printer (first packet: reactive resolution)\n");
  fabric.endpoint_send_udp(alice_mac, printer_ip, 9100, 1200);
  sim.run();
  std::printf("edge-west FIB entries: %zu, default-routed so far: %llu\n",
              fabric.edge("edge-west").fib_size(),
              static_cast<unsigned long long>(
                  fabric.edge("edge-west").counters().default_routed));

  std::printf("\nalice -> printer (second packet: cached, direct encapsulation)\n");
  fabric.endpoint_send_udp(alice_mac, printer_ip, 9100, 1200);
  sim.run();

  // 6. Micro-segmentation: the printer cannot initiate towards alice.
  std::printf("\nprinter -> alice (denied by group policy on egress)\n");
  fabric.endpoint_send_udp(printer_mac, alice_ip, 631, 100);
  sim.run();
  std::printf("policy drops at edge-west: %llu\n",
              static_cast<unsigned long long>(
                  fabric.edge("edge-west").counters().policy_drops));
  return 0;
}
