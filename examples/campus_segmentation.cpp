// Campus segmentation walkthrough: the paper's hospital-style scenario
// (§3.2.1) with macro-segmentation (VNs) and micro-segmentation (groups).
//
// Three VNs — staff, medical devices, guests — that can never talk to each
// other, plus a group matrix inside the staff VN separating doctors from
// contractors, and a policy change applied live (the §5.4 "move the user"
// strategy).
#include <cstdio>

#include "fabric/fabric.hpp"

using namespace sda;

namespace {

constexpr net::VnId kStaff{100};
constexpr net::VnId kDevices{200};
constexpr net::VnId kGuests{300};
constexpr net::GroupId kDoctors{10};
constexpr net::GroupId kContractors{11};
constexpr net::GroupId kRecords{12};  // patient-record servers

int delivered = 0;
int attempted = 0;

void try_send(sim::Simulator& sim, fabric::SdaFabric& fabric, const char* what,
              net::MacAddress from, net::Ipv4Address to) {
  const int before = delivered;
  ++attempted;
  fabric.endpoint_send_udp(from, to, 443, 256);
  sim.run();
  std::printf("  %-46s %s\n", what, delivered > before ? "DELIVERED" : "blocked");
}

}  // namespace

int main() {
  sim::Simulator sim;
  fabric::SdaFabric fabric{sim, fabric::FabricConfig{}};

  // A small three-floor building: 3 edges behind one border (Fig. 8 shape).
  fabric.add_border("border");
  for (const char* edge : {"floor-1", "floor-2", "floor-3"}) {
    fabric.add_edge(edge);
    fabric.link(edge, "border");
  }
  fabric.finalize();

  // Macro segmentation: one VN per population, each with its own pool.
  fabric.define_vn({kStaff, "staff", *net::Ipv4Prefix::parse("10.10.0.0/16")});
  fabric.define_vn({kDevices, "medical-devices", *net::Ipv4Prefix::parse("10.20.0.0/16")});
  fabric.define_vn({kGuests, "guests", *net::Ipv4Prefix::parse("10.30.0.0/16")});

  // Micro segmentation inside the staff VN: contractors cannot reach the
  // patient-record servers; doctors can.
  fabric.set_rule({kStaff, kContractors, kRecords, policy::Action::Deny});

  struct Person {
    const char* name;
    net::VnId vn;
    net::GroupId group;
    const char* edge;
  };
  const Person people[] = {
      {"dr-grey", kStaff, kDoctors, "floor-1"},
      {"contractor-joe", kStaff, kContractors, "floor-2"},
      {"records-srv", kStaff, kRecords, "floor-3"},
      {"mri-machine", kDevices, net::GroupId{30}, "floor-3"},
      {"guest-anna", kGuests, net::GroupId{40}, "floor-1"},
  };

  std::unordered_map<std::string, net::Ipv4Address> ip;
  std::unordered_map<std::string, net::MacAddress> mac;
  std::uint64_t next_mac = 1;
  for (const Person& person : people) {
    const auto m = net::MacAddress::from_u64(0x020000000000ull + next_mac++);
    mac[person.name] = m;
    fabric.provision_endpoint({person.name, "pw", m, person.vn, person.group});
    fabric.connect_endpoint(person.name, person.edge, 1,
                            [&ip, person](const fabric::OnboardResult& r) {
                              ip[person.name] = r.ip;
                              std::printf("onboarded %-14s vn=%-3u group=%-2u %s (%s)\n",
                                          person.name, r.vn.value(), r.group.value(),
                                          r.ip.to_string().c_str(), r.edge.c_str());
                            });
  }
  sim.run();

  fabric.set_delivery_listener([](const dataplane::AttachedEndpoint&, const net::OverlayFrame&,
                                  sim::SimTime) { ++delivered; });

  std::printf("\n-- micro-segmentation inside the staff VN --\n");
  try_send(sim, fabric, "dr-grey -> records-srv (doctor allowed)", mac["dr-grey"],
           ip["records-srv"]);
  try_send(sim, fabric, "contractor-joe -> records-srv (denied)", mac["contractor-joe"],
           ip["records-srv"]);

  std::printf("\n-- macro-segmentation between VNs --\n");
  try_send(sim, fabric, "guest-anna -> records-srv (different VN)", mac["guest-anna"],
           ip["records-srv"]);
  try_send(sim, fabric, "dr-grey -> mri-machine (different VN)", mac["dr-grey"],
           ip["mri-machine"]);

  std::printf("\n-- policy change: contractor promoted to doctors group (5.4) --\n");
  fabric.reassign_endpoint_group("contractor-joe", kDoctors);
  sim.run();
  try_send(sim, fabric, "contractor-joe -> records-srv (now allowed)",
           mac["contractor-joe"], ip["records-srv"]);

  std::printf("\n%d/%d attempts delivered; SGACL drops across edges: ", delivered, attempted);
  std::uint64_t drops = 0;
  for (const auto& name : fabric.edge_names()) {
    drops += fabric.edge(name).counters().policy_drops;
  }
  std::printf("%llu\n", static_cast<unsigned long long>(drops));
  return 0;
}
