// Operations drill: the paper's "lessons learnt" failure modes (§5.1-5.2)
// exercised live, with `sda::fabric::inspect` state reports between steps.
//
// Timeline: steady traffic -> uplink loss on the destination edge (IGP
// fallback to the border default route) -> recovery -> full edge reboot
// (state loss, automatic re-onboarding) -> steady state again.
#include <cstdio>

#include "fabric/fabric.hpp"
#include "fabric/inspect.hpp"

using namespace sda;

namespace {

int delivered = 0;
int sent = 0;

void pulse(sim::Simulator& sim, fabric::SdaFabric& fabric, net::MacAddress from,
           net::Ipv4Address to, int packets, const char* label,
           sim::Duration gap = std::chrono::milliseconds{10}) {
  const int before_d = delivered, before_s = sent;
  for (int i = 0; i < packets; ++i) {
    sim.schedule_after(gap * i, [&fabric, from, to] {
      ++sent;
      fabric.endpoint_send_udp(from, to, 443, 300);
    });
  }
  sim.run();
  std::printf("%-44s %d/%d packets delivered\n", label, delivered - before_d,
              sent - before_s);
}

}  // namespace

int main() {
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.underlay.igp_convergence = std::chrono::milliseconds{100};
  fabric::SdaFabric fabric{sim, config};

  // Triangle of edges under one border plus a redundant peer link, so a
  // single uplink loss degrades rather than partitions.
  fabric.add_border("border");
  for (const char* edge : {"edge-a", "edge-b", "edge-c"}) {
    fabric.add_edge(edge);
    fabric.link(edge, "border");
  }
  fabric.link("edge-a", "edge-b");
  fabric.finalize();

  const net::VnId corp{100};
  fabric.define_vn({corp, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  const auto mac_src = net::MacAddress::from_u64(0x020000000001);
  const auto mac_dst = net::MacAddress::from_u64(0x020000000002);
  fabric.provision_endpoint({"src-host", "pw", mac_src, corp, net::GroupId{10}});
  fabric.provision_endpoint({"dst-host", "pw", mac_dst, corp, net::GroupId{10}});
  net::Ipv4Address dst_ip;
  fabric.connect_endpoint("src-host", "edge-a", 1);
  fabric.connect_endpoint("dst-host", "edge-b", 1,
                          [&](const fabric::OnboardResult& r) { dst_ip = r.ip; });
  sim.run();
  fabric.set_delivery_listener(
      [](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime) {
        ++delivered;
      });

  std::printf("== steady state ==\n");
  pulse(sim, fabric, mac_src, dst_ip, 10, "src -> dst over the direct peer link:");

  std::printf("\n== drill 1 (paper 5.1): edge-b loses its direct peering ==\n");
  std::printf("(edge-b stays reachable through the border, so the IGP simply reroutes;\n");
  std::printf(" the overlay mapping at edge-a is still valid and stays cached)\n");
  fabric.set_link_state("edge-a", "edge-b", false);
  sim.run();
  pulse(sim, fabric, mac_src, dst_ip, 10, "same flow, rerouted via the border:");
  fabric.set_link_state("edge-a", "edge-b", true);
  sim.run();
  pulse(sim, fabric, mac_src, dst_ip, 10, "after recovery:");

  std::printf("\n== drill 2 (paper 5.2): edge-b reboots (2 s outage) ==\n");
  std::printf("(edge-b's RLOC disappears from the IGP: edge-a purges its mapping and\n");
  std::printf(" falls back to the border; delivery resumes once dst re-onboards)\n");
  fabric.reboot_edge("edge-b", std::chrono::seconds{2});
  pulse(sim, fabric, mac_src, dst_ip, 10, "packets spread across the outage:",
        std::chrono::milliseconds{300});
  std::printf("edge-a cache entries purged on outage: %llu\n",
              static_cast<unsigned long long>(fabric.edge("edge-a").counters().rloc_fallbacks));
  std::printf("dst-host re-onboarded automatically at: %s\n",
              fabric.location_of(mac_dst).value_or("<nowhere>").c_str());
  pulse(sim, fabric, mac_src, dst_ip, 10, "steady state restored:");

  std::printf("\n%s", fabric::inspect(fabric).c_str());
  return 0;
}
