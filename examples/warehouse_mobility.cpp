// Warehouse mobility walkthrough (paper §4.3, scaled down for a demo).
//
// Robots roam between edges while streaming telemetry towards the border.
// The example traces one robot's handover end to end: detach, fast
// re-authentication, Map-Register, Map-Notify to the previous edge, pub/sub
// update at the border — then shows the data-triggered SMR refreshing a
// stale peer that keeps talking to the robot.
#include <cstdio>

#include "fabric/fabric.hpp"
#include "stats/summary.hpp"

using namespace sda;

int main() {
  sim::Simulator sim;
  fabric::FabricConfig config;
  // Robots use fast PSK transitions: tighter timings than office Wi-Fi.
  config.timings.detection = std::chrono::microseconds{500};
  config.timings.auth_processing = std::chrono::microseconds{500};
  config.timings.roam_auth_round_trips = 1;
  fabric::SdaFabric fabric{sim, config};

  fabric.add_border("border");
  for (int i = 0; i < 8; ++i) {
    const std::string name = "aisle-" + std::to_string(i);
    fabric.add_edge(name);
    fabric.link(name, "border", std::chrono::microseconds{50});
  }
  fabric.finalize();

  const net::VnId robots_vn{1};
  fabric.define_vn({robots_vn, "robots", *net::Ipv4Prefix::parse("10.64.0.0/16")});
  fabric.add_external_prefix(robots_vn, *net::Ipv4Prefix::parse("0.0.0.0/0"));

  // A small fleet plus one fixed telemetry collector.
  constexpr int kRobots = 24;
  std::vector<net::Ipv4Address> robot_ip(kRobots);
  for (int r = 0; r < kRobots; ++r) {
    const auto mac = net::MacAddress::from_u64(0x060000000000ull + static_cast<unsigned>(r));
    fabric.provision_endpoint({"robot-" + std::to_string(r), "wheels", mac, robots_vn,
                               net::GroupId{30}});
    fabric.connect_endpoint("robot-" + std::to_string(r), "aisle-" + std::to_string(r % 8), 1,
                            [&robot_ip, r](const fabric::OnboardResult& res) {
                              robot_ip[static_cast<std::size_t>(r)] = res.ip;
                            });
  }
  const auto collector_mac = net::MacAddress::from_u64(0x060000001000ull);
  net::Ipv4Address collector_ip;
  fabric.provision_endpoint({"collector", "pw", collector_mac, robots_vn, net::GroupId{31}});
  fabric.connect_endpoint("collector", "aisle-7", 9, [&](const fabric::OnboardResult& r) {
    collector_ip = r.ip;
  });
  sim.run();
  std::printf("fleet online: %zu mappings registered at the routing server\n",
              fabric.map_server().mapping_count(robots_vn));

  // The collector polls robot-0, so aisle-7 caches robot-0's location.
  fabric.endpoint_send_udp(collector_mac, robot_ip[0], 7000, 64);
  sim.run();

  // Trace robot-0 roaming aisle-0 -> aisle-3.
  std::printf("\nrobot-0 roams aisle-0 -> aisle-3:\n");
  stats::Summary handovers;
  sim::SimTime border_synced;
  fabric.set_border_sync_listener([&](const std::string&, const net::VnEid& eid,
                                      const lisp::MappingRecord* record) {
    if (record && eid.eid.is_ipv4() && eid.eid.ipv4() == robot_ip[0]) {
      border_synced = sim.now();
    }
  });
  const sim::SimTime detach = sim.now();
  fabric.roam_endpoint(net::MacAddress::from_u64(0x060000000000ull), "aisle-3", 2,
                       [&](const fabric::OnboardResult& r) {
                         std::printf("  re-attached at %-8s after %.2f ms (fast re-auth)\n",
                                     r.edge.c_str(),
                                     static_cast<double>(r.elapsed.count()) / 1e6);
                       });
  sim.run();
  std::printf("  border synchronized after %.2f ms (pub/sub)\n",
              static_cast<double>((border_synced - detach).count()) / 1e6);
  const auto* old_edge_entry = fabric.edge("aisle-0").map_cache().lookup(
      net::VnEid{robots_vn, net::Eid{robot_ip[0]}}, sim.now());
  if (old_edge_entry != nullptr) {
    std::printf("  aisle-0 holds a Map-Notify forward entry -> %s (Fig. 5)\n",
                old_edge_entry->primary_rloc().to_string().c_str());
  }

  // The collector still has a stale cache entry towards aisle-0. Its next
  // poll is forwarded by the old edge and triggers an SMR (Fig. 6).
  int delivered = 0;
  fabric.set_delivery_listener([&](const dataplane::AttachedEndpoint& e,
                                   const net::OverlayFrame&, sim::SimTime) {
    if (e.credential == "robot-0") ++delivered;
  });
  std::printf("\ncollector polls robot-0 through its stale entry:\n");
  fabric.endpoint_send_udp(collector_mac, robot_ip[0], 7000, 64);
  sim.run();
  std::printf("  delivered=%d, stale-forwards at aisle-0: %llu, SMRs received by aisle-7: %llu\n",
              delivered,
              static_cast<unsigned long long>(fabric.edge("aisle-0").counters().stale_forwards),
              static_cast<unsigned long long>(fabric.edge("aisle-7").counters().smr_received));

  fabric.endpoint_send_udp(collector_mac, robot_ip[0], 7000, 64);
  sim.run();
  std::printf("  next poll goes direct: aisle-7 -> aisle-3 (refreshed cache), delivered=%d\n",
              delivered);
  return 0;
}
