// L2 services walkthrough (paper §3.5): ARP without flooding.
//
// Two hosts on different edges discover each other with ARP. The edge's L2
// gateway absorbs the broadcast, asks the routing server for the IP->MAC
// binding, converts the request to unicast, and forwards it over the
// MAC-keyed overlay — no broadcast ever crosses the fabric.
#include <cstdio>

#include "fabric/fabric.hpp"

using namespace sda;

int main() {
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = true;
  fabric::SdaFabric fabric{sim, config};

  fabric.add_border("border");
  fabric.add_edge("edge-a");
  fabric.add_edge("edge-b");
  fabric.link("edge-a", "border");
  fabric.link("edge-b", "border");
  fabric.finalize();

  const net::VnId vn{100};
  fabric.define_vn({vn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  const auto mac_a = net::MacAddress::from_u64(0x02000000000A);
  const auto mac_b = net::MacAddress::from_u64(0x02000000000B);
  // l2_services=true registers the MAC EID and the IP->MAC binding.
  fabric.provision_endpoint({"host-a", "pw", mac_a, vn, net::GroupId{10}, true});
  fabric.provision_endpoint({"host-b", "pw", mac_b, vn, net::GroupId{10}, true});

  net::Ipv4Address ip_a, ip_b;
  fabric.connect_endpoint("host-a", "edge-a", 1,
                          [&](const fabric::OnboardResult& r) { ip_a = r.ip; });
  fabric.connect_endpoint("host-b", "edge-b", 1,
                          [&](const fabric::OnboardResult& r) { ip_b = r.ip; });
  sim.run();
  std::printf("host-a: %s (%s)   host-b: %s (%s)\n", ip_a.to_string().c_str(),
              mac_a.to_string().c_str(), ip_b.to_string().c_str(), mac_b.to_string().c_str());
  std::printf("routing server: %zu mappings (IP + MAC per host), IP->MAC bindings stored\n\n",
              fabric.map_server().mapping_count(vn));

  fabric.set_delivery_listener([&](const dataplane::AttachedEndpoint& to,
                                   const net::OverlayFrame& frame, sim::SimTime at) {
    if (frame.is_arp()) {
      const auto& arp = frame.arp();
      std::printf("[%s] %s received ARP %s (sender %s / %s)\n", at.to_string().c_str(),
                  to.credential.c_str(),
                  arp.op == net::ArpPacket::Op::Request ? "request" : "reply",
                  arp.sender_ip.to_string().c_str(), arp.sender_mac.to_string().c_str());
      // Answer requests like a real host would.
      if (arp.op == net::ArpPacket::Op::Request) {
        net::OverlayFrame reply;
        reply.source_mac = to.mac;
        reply.destination_mac = arp.sender_mac;
        net::ArpPacket answer;
        answer.op = net::ArpPacket::Op::Reply;
        answer.sender_mac = to.mac;
        answer.sender_ip = to.ip;
        answer.target_mac = arp.sender_mac;
        answer.target_ip = arp.sender_ip;
        reply.l3 = answer;
        fabric.edge(*fabric.location_of(to.mac)).endpoint_transmit(to.mac, reply);
      }
    } else {
      std::printf("[%s] %s received %u bytes UDP\n", at.to_string().c_str(),
                  to.credential.c_str(), frame.ip().payload_size);
    }
  });

  std::printf("host-a broadcasts: who has %s?\n", ip_b.to_string().c_str());
  fabric.endpoint_send_arp(mac_a, ip_b);
  sim.run();

  std::printf("\nARP resolved without flooding. Now host-a sends UDP to host-b:\n");
  fabric.endpoint_send_udp(mac_a, ip_b, 5000, 512);
  sim.run();

  std::printf("\nedge-a counters: encapsulated=%llu, default-routed=%llu\n",
              static_cast<unsigned long long>(fabric.edge("edge-a").counters().encapsulated),
              static_cast<unsigned long long>(
                  fabric.edge("edge-a").counters().default_routed));
  std::printf("(broadcast absorbed at the edge; ARP crossed the fabric as unicast only)\n");

  // Bonjour-style service discovery, also broadcast-free (paper 3.5):
  // host-b advertises a printer; host-a "broadcasts" a query and gets a
  // unicast answer from the central registry.
  std::printf("\nhost-b advertises _ipp._tcp \"den-printer\"; host-a queries:\n");
  fabric.advertise_service(mac_b, "_ipp._tcp", "den-printer", 631);
  sim.run();
  fabric.endpoint_query_service(mac_a, "_ipp._tcp",
                                [](std::vector<l2::ServiceInstance> instances) {
                                  for (const auto& service : instances) {
                                    std::printf("  found %s at %s:%u (provider %s)\n",
                                                service.name.c_str(),
                                                service.address.to_string().c_str(),
                                                service.port,
                                                service.provider.to_string().c_str());
                                  }
                                });
  sim.run();
  std::printf("(query absorbed at the edge, answered by the registry — zero flooding)\n");
  return 0;
}
