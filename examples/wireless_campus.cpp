// Wireless campus walkthrough (paper §2 "Mobility", Table 1): the same
// station fleet on a legacy controller-anchored WLAN and on SDA's
// distributed data plane, side by side.
#include <cstdio>

#include "fabric/topologies.hpp"
#include "wlan/controller.hpp"

using namespace sda;

namespace {

constexpr net::VnId kVn{100};

net::MacAddress mac(std::uint64_t i) {
  return net::MacAddress::from_u64(0x0200'0000'0000ull | i);
}

void run_mode(wlan::DataPlaneMode mode, const char* label) {
  sim::Simulator sim;
  fabric::SdaFabric fabric{sim, fabric::FabricConfig{}};

  // Three-tier campus (Fig. 8 shape) plus an anchor edge for the WLC.
  fabric::TieredCampusSpec topo;
  topo.borders = 1;
  topo.distribution = 2;
  topo.edges = 4;
  const fabric::TieredCampus campus = fabric::build_tiered_campus(fabric, topo);
  fabric.add_edge("wlc-anchor");
  fabric.link("wlc-anchor", campus.borders[0]);
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  wlan::WlanConfig wconfig;
  wconfig.mode = mode;
  wconfig.controller_edge = "wlc-anchor";
  wlan::WlanController wlc{fabric, wconfig};
  for (unsigned e = 0; e < campus.edges.size(); ++e) {
    wlc.add_access_point({"ap-" + std::to_string(e), campus.edges[e], 1});
  }

  net::Ipv4Address laptop_ip, printer_ip;
  fabric.provision_endpoint({"laptop", "pw", mac(1), kVn, net::GroupId{10}});
  fabric.provision_endpoint({"printer", "pw", mac(2), kVn, net::GroupId{10}});
  wlc.associate("laptop", "ap-0",
                [&](const wlan::AssociationResult& r) { laptop_ip = r.ip; });
  wlc.associate("printer", "ap-3",
                [&](const wlan::AssociationResult& r) { printer_ip = r.ip; });
  sim.run();

  sim::SimTime delivered_at;
  wlc.set_station_delivery_listener([&](const dataplane::AttachedEndpoint&,
                                        const net::OverlayFrame&, sim::SimTime at) {
    delivered_at = at;
  });

  // Warm the path, then measure one steady-state print job frame.
  wlc.station_send_udp(mac(1), printer_ip, 9100, 800);
  sim.run();
  const sim::SimTime t0 = sim.now();
  wlc.station_send_udp(mac(1), printer_ip, 9100, 800);
  sim.run();
  const double latency_us = static_cast<double>((delivered_at - t0).count()) / 1e3;

  // Roam the laptop across the building.
  sim::Duration handover{};
  wlc.roam(mac(1), "ap-2", [&](const wlan::AssociationResult& r) { handover = r.elapsed; });
  sim.run();

  std::printf("%-28s laptop@%s  data latency %7.1f us  roam %6.2f ms  WLC frames %llu\n",
              label, fabric.location_of(mac(1))->c_str(), latency_us,
              static_cast<double>(handover.count()) / 1e6,
              static_cast<unsigned long long>(wlc.stats().frames_tunneled));
}

}  // namespace

int main() {
  std::printf("wireless campus: one laptop printing across the building\n\n");
  run_mode(wlan::DataPlaneMode::Centralized, "legacy (WLC data sink):");
  run_mode(wlan::DataPlaneMode::Distributed, "SDA (distributed data):");
  std::printf("\nthe legacy anchor hides mobility from the network (fast roams) but every\n");
  std::printf("frame detours through the controller; SDA routes from the AP's edge and\n");
  std::printf("pays only a Map-Register on roam (paper section 2, Table 1).\n");
  return 0;
}
