#include "bgp/rib.hpp"

#include <gtest/gtest.h>

namespace sda::bgp {
namespace {

using net::Eid;
using net::Ipv4Address;
using net::VnEid;
using net::VnId;

VnEid eid(const char* ip) { return VnEid{VnId{1}, Eid{*Ipv4Address::parse(ip)}}; }
sim::SimTime at_s(int s) { return sim::SimTime{std::chrono::seconds{s}}; }

TEST(Rib, InstallAndLookup) {
  Rib rib;
  EXPECT_TRUE(rib.install(eid("10.1.0.5"), *Ipv4Address::parse("10.0.0.2"), at_s(0), 1));
  const RibEntry* entry = rib.lookup(eid("10.1.0.5"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->next_hop, *Ipv4Address::parse("10.0.0.2"));
  EXPECT_EQ(rib.size(), 1u);
}

TEST(Rib, ReinstallSameNexthopReportsNoChange) {
  Rib rib;
  rib.install(eid("10.1.0.5"), *Ipv4Address::parse("10.0.0.2"), at_s(0), 1);
  EXPECT_FALSE(rib.install(eid("10.1.0.5"), *Ipv4Address::parse("10.0.0.2"), at_s(1), 2));
  EXPECT_TRUE(rib.install(eid("10.1.0.5"), *Ipv4Address::parse("10.0.0.3"), at_s(2), 3));
}

TEST(Rib, StaleVersionsIgnored) {
  Rib rib;
  rib.install(eid("10.1.0.5"), *Ipv4Address::parse("10.0.0.3"), at_s(0), 10);
  // An older (reordered) update must not regress the RIB.
  EXPECT_FALSE(rib.install(eid("10.1.0.5"), *Ipv4Address::parse("10.0.0.2"), at_s(1), 5));
  EXPECT_EQ(rib.lookup(eid("10.1.0.5"))->next_hop, *Ipv4Address::parse("10.0.0.3"));
}

TEST(Rib, Withdraw) {
  Rib rib;
  rib.install(eid("10.1.0.5"), *Ipv4Address::parse("10.0.0.2"), at_s(0), 1);
  EXPECT_TRUE(rib.withdraw(eid("10.1.0.5")));
  EXPECT_FALSE(rib.withdraw(eid("10.1.0.5")));
  EXPECT_EQ(rib.lookup(eid("10.1.0.5")), nullptr);
}

TEST(Rib, WalkVisitsAllRoutes) {
  Rib rib;
  for (std::uint32_t i = 0; i < 50; ++i) {
    rib.install(VnEid{VnId{1}, Eid{Ipv4Address{0x0A010000u + i}}},
                *Ipv4Address::parse("10.0.0.2"), at_s(0), i + 1);
  }
  std::size_t count = 0;
  rib.walk([&](const VnEid&, const RibEntry&) { ++count; });
  EXPECT_EQ(count, 50u);
}

}  // namespace
}  // namespace sda::bgp
