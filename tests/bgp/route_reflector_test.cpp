#include "bgp/route_reflector.hpp"

#include <gtest/gtest.h>

namespace sda::bgp {
namespace {

using net::Eid;
using net::Ipv4Address;
using net::VnEid;
using net::VnId;

VnEid eid(std::uint32_t i) { return VnEid{VnId{1}, Eid{Ipv4Address{0x0A010000u + i}}}; }
Ipv4Address rloc(std::uint32_t i) { return Ipv4Address{0x0A000000u + i}; }

struct ReflectorFixture : ::testing::Test {
  ReflectorFixture() {
    config.batch_interval = std::chrono::milliseconds{10};
    config.per_peer_send = std::chrono::microseconds{20};
    config.per_route_marginal = std::chrono::microseconds{2};
    config.network_delay = std::chrono::microseconds{150};
    config.peer_install = std::chrono::microseconds{30};
    reflector = std::make_unique<RouteReflector>(sim, config, 7);
    for (std::uint32_t i = 0; i < 10; ++i) {
      peers.push_back(std::make_unique<BgpPeer>(rloc(i)));
      reflector->add_client(*peers.back());
    }
  }

  sim::Simulator sim;
  ReflectorConfig config;
  std::unique_ptr<RouteReflector> reflector;
  std::vector<std::unique_ptr<BgpPeer>> peers;
};

TEST_F(ReflectorFixture, UpdateReachesAllOtherPeers) {
  reflector->announce(peers[0]->rloc(), eid(1), peers[0]->rloc());
  sim.run();
  for (std::size_t i = 1; i < peers.size(); ++i) {
    const RibEntry* entry = peers[i]->rib().lookup(eid(1));
    ASSERT_NE(entry, nullptr) << "peer " << i;
    EXPECT_EQ(entry->next_hop, peers[0]->rloc());
  }
  EXPECT_EQ(reflector->stats().announcements, 1u);
  EXPECT_EQ(reflector->stats().batches, 1u);
}

TEST_F(ReflectorFixture, OriginatorNotReflectedBackToItself) {
  reflector->announce(peers[3]->rloc(), eid(5), peers[3]->rloc());
  sim.run();
  EXPECT_EQ(peers[3]->rib().lookup(eid(5)), nullptr);
  EXPECT_EQ(reflector->stats().peer_updates_sent, peers.size() - 1);
}

TEST_F(ReflectorFixture, BatchingCoalescesAnnouncements) {
  for (std::uint32_t i = 0; i < 5; ++i) {
    reflector->announce(peers[0]->rloc(), eid(i), peers[0]->rloc());
  }
  sim.run();
  EXPECT_EQ(reflector->stats().batches, 1u);  // all inside one MRAI window
  EXPECT_EQ(reflector->stats().peer_updates_sent, peers.size() - 1);
  EXPECT_EQ(reflector->stats().routes_replicated, 5 * (peers.size() - 1));
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_NE(peers[9]->rib().lookup(eid(i)), nullptr);
  }
}

TEST_F(ReflectorFixture, ConvergenceWaitsForBatchWindow) {
  bool installed = false;
  peers[9]->set_install_callback([&](const VnEid&, Ipv4Address) { installed = true; });
  reflector->announce(peers[0]->rloc(), eid(1), peers[0]->rloc());
  sim.run_until(sim::SimTime{std::chrono::milliseconds{9}});
  EXPECT_FALSE(installed);  // still inside the batch window
  sim.run();
  EXPECT_TRUE(installed);
  EXPECT_GT(sim.now(), sim::SimTime{std::chrono::milliseconds{10}});
}

TEST_F(ReflectorFixture, FanOutSerializationSpreadsInstallTimes) {
  std::vector<sim::SimTime> install_times;
  for (auto& peer : peers) {
    peer->set_install_callback(
        [&, p = peer.get()](const VnEid&, Ipv4Address) { install_times.push_back(sim.now()); });
  }
  reflector->announce(peers[0]->rloc(), eid(1), peers[0]->rloc());
  sim.run();
  ASSERT_EQ(install_times.size(), peers.size() - 1);
  // The reflector output queue serializes per-peer sends: first and last
  // peer differ by at least (n-2) * per_peer_send.
  const auto spread = install_times.back() - install_times.front();
  EXPECT_GE(spread, config.per_peer_send * (peers.size() - 2));
}

TEST_F(ReflectorFixture, LaterAnnouncementWinsOnConflict) {
  reflector->announce(peers[0]->rloc(), eid(1), peers[0]->rloc());
  reflector->announce(peers[1]->rloc(), eid(1), peers[1]->rloc());
  sim.run();
  // Both updates are in the same batch; the second (higher version) wins
  // everywhere, regardless of per-peer delivery order.
  for (std::size_t i = 2; i < peers.size(); ++i) {
    EXPECT_EQ(peers[i]->rib().lookup(eid(1))->next_hop, peers[1]->rloc());
  }
}

TEST_F(ReflectorFixture, SustainedLoadConvergesEventually) {
  for (std::uint32_t round = 0; round < 20; ++round) {
    sim.schedule_at(sim::SimTime{std::chrono::milliseconds{round * 5}}, [this, round] {
      reflector->announce(peers[round % 10]->rloc(), eid(100 + round),
                          peers[round % 10]->rloc());
    });
  }
  sim.run();
  EXPECT_GE(reflector->stats().batches, 2u);
  // Spot-check: the last announced route reached a non-originator peer.
  EXPECT_NE(peers[0]->rib().lookup(eid(119)), nullptr);
}

}  // namespace
}  // namespace sda::bgp
