#include "workload/campus.hpp"

#include <gtest/gtest.h>

namespace sda::workload {
namespace {

CampusSpec tiny_spec() {
  CampusSpec spec;
  spec.name = "T";
  spec.borders = 1;
  spec.edges = 3;
  spec.users = 30;
  spec.permanent = 6;
  spec.flows_per_hour = 4;
  spec.permanent_flows_per_hour = 2;
  // Few external destinations: at toy population sizes the edge caches
  // would otherwise be dominated by the external set and dwarf the border.
  spec.external_destinations = 12;
  spec.seed = 5;
  return spec;
}

TEST(CampusWorkload, TimeHelpers) {
  using sim::SimTime;
  EXPECT_TRUE(is_weekday(SimTime{std::chrono::hours{10}}));        // Monday 10:00
  EXPECT_TRUE(is_weekday(SimTime{std::chrono::hours{4 * 24}}));    // Friday
  EXPECT_FALSE(is_weekday(SimTime{std::chrono::hours{5 * 24}}));   // Saturday
  EXPECT_FALSE(is_weekday(SimTime{std::chrono::hours{6 * 24}}));   // Sunday
  EXPECT_TRUE(is_weekday(SimTime{std::chrono::hours{7 * 24}}));    // Monday again
  EXPECT_TRUE(is_work_hours(SimTime{std::chrono::hours{10}}));
  EXPECT_FALSE(is_work_hours(SimTime{std::chrono::hours{20}}));
  EXPECT_FALSE(is_work_hours(SimTime{std::chrono::hours{8}}));
  EXPECT_TRUE(is_work_hours(SimTime{std::chrono::hours{24 + 9}}));
}

TEST(CampusWorkload, OneWeekRunProducesSaneSeries) {
  CampusWorkload campus{tiny_spec()};
  const CampusResult result = campus.run(1);

  // Hourly samples for 7 days.
  EXPECT_EQ(result.border_fib.size(), 7u * 24);
  EXPECT_EQ(result.edge_fib.size(), 7u * 24);
  EXPECT_EQ(result.per_edge_fib.size(), 3u);

  // The border tracks presence: day average must exceed night average.
  EXPECT_GT(result.border_day, result.border_night);
  // Permanent endpoints keep the border FIB nonzero at night.
  EXPECT_GT(result.border_night, 0.0);
  // Edge caches exist and hold fewer entries than the border by day
  // (reactive state optimization, the Fig. 9 headline).
  EXPECT_GT(result.edge_all, 0.0);
  EXPECT_LT(result.edge_day, result.border_day);
}

TEST(CampusWorkload, StateReductionPositive) {
  CampusSpec spec = tiny_spec();
  spec.users = 60;       // more users -> bigger border table
  spec.permanent = 30;
  CampusWorkload campus{spec};
  const CampusResult result = campus.run(1);
  EXPECT_GT(result.state_reduction(), 0.0);
  EXPECT_LT(result.state_reduction(), 1.0);
}

TEST(CampusWorkload, DeterministicForSameSeed) {
  CampusWorkload a{tiny_spec()};
  CampusWorkload b{tiny_spec()};
  const CampusResult ra = a.run(1);
  const CampusResult rb = b.run(1);
  EXPECT_DOUBLE_EQ(ra.border_all, rb.border_all);
  EXPECT_DOUBLE_EQ(ra.edge_all, rb.edge_all);
}

TEST(CampusWorkload, DifferentSeedsDiffer) {
  CampusSpec other = tiny_spec();
  other.seed = 77;
  CampusWorkload a{tiny_spec()};
  CampusWorkload b{other};
  EXPECT_NE(a.run(1).border_all, b.run(1).border_all);
}

}  // namespace
}  // namespace sda::workload
