#include "workload/warehouse.hpp"

#include <gtest/gtest.h>

namespace sda::workload {
namespace {

WarehouseSpec tiny_spec() {
  WarehouseSpec spec;
  spec.edges = 20;
  spec.hosts = 400;
  spec.moves_per_second = 100;
  spec.measure_seconds = 4;
  spec.seed = 3;
  return spec;
}

TEST(WarehouseWorkload, ReactiveRunProducesHandovers) {
  WarehouseWorkload warehouse{tiny_spec()};
  std::size_t moves = 0;
  const stats::Summary handovers = warehouse.run_reactive(&moves);
  EXPECT_GT(moves, 100u);  // ~400 expected in 4s at 100/s
  EXPECT_EQ(handovers.count(), moves);
  // Every handover is positive and well under a second in a quiet fabric.
  EXPECT_GT(handovers.min(), 0.0);
  EXPECT_LT(handovers.percentile(99), 0.5);
}

TEST(WarehouseWorkload, ProactiveRunProducesHandovers) {
  WarehouseWorkload warehouse{tiny_spec()};
  std::size_t moves = 0;
  const stats::Summary handovers = warehouse.run_proactive(&moves);
  EXPECT_GT(moves, 100u);
  EXPECT_GT(handovers.min(), 0.0);
  // Proactive convergence includes attach plus at least reflector network
  // and install latency; an announcement can land just before a batch
  // flush, so the batch window is not a hard lower bound.
  EXPECT_GE(handovers.min(), 0.001);
  // But typical convergence does wait for the MRAI window.
  EXPECT_GE(handovers.median(), 0.010);
}

TEST(WarehouseWorkload, ReactiveBeatsProactiveMedian) {
  WarehouseWorkload warehouse{tiny_spec()};
  const stats::Summary lisp = warehouse.run_reactive(nullptr);
  const stats::Summary bgp = warehouse.run_proactive(nullptr);
  // The paper's headline: the reactive control plane converges much
  // faster under mobility. Even at toy scale the gap must be clear.
  EXPECT_LT(lisp.median() * 2, bgp.median());
}

TEST(WarehouseWorkload, ProactiveVarianceHigher) {
  WarehouseWorkload warehouse{tiny_spec()};
  const stats::Summary lisp = warehouse.run_reactive(nullptr);
  const stats::Summary bgp = warehouse.run_proactive(nullptr);
  EXPECT_GT(bgp.stddev(), lisp.stddev());
}

TEST(WarehouseWorkload, DeterministicForSeed) {
  WarehouseWorkload a{tiny_spec()};
  WarehouseWorkload b{tiny_spec()};
  std::size_t ma = 0, mb = 0;
  const auto ha = a.run_reactive(&ma);
  const auto hb = b.run_reactive(&mb);
  EXPECT_EQ(ma, mb);
  EXPECT_DOUBLE_EQ(ha.mean(), hb.mean());
}

}  // namespace
}  // namespace sda::workload
