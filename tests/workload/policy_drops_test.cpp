#include "workload/policy_drops.hpp"

#include <gtest/gtest.h>

namespace sda::workload {
namespace {

PolicyDropSpec tiny_spec() {
  PolicyDropSpec spec;
  spec.devices = {
      {.name = "branch", .users = 200, .attempts_per_hour = 25, .denied_pick_share = 0.0025},
      {.name = "vpn-gw", .users = 200, .attempts_per_hour = 35, .denied_pick_share = 0.009,
       .give_up_rate = 1.1, .remote_usage = true},
  };
  spec.update_transient_share = 0.01;
  spec.days = 3;
  spec.policy_update_hour = 30;
  spec.seed = 7;
  return spec;
}

TEST(PolicyDrops, ProducesHourlySeriesPerDevice) {
  const PolicyDropResult result = run_policy_drops(tiny_spec());
  ASSERT_EQ(result.devices.size(), 2u);
  for (const auto& device : result.devices) {
    EXPECT_EQ(device.drop_permille.size(), 3u * 24);
    EXPECT_GT(device.total_packets, 0u);
  }
}

TEST(PolicyDrops, DropRatesAreTinyPermille) {
  // The paper's Fig. 12 observation: worst case ~0.2 permille overall.
  const PolicyDropResult result = run_policy_drops(tiny_spec());
  for (const auto& device : result.devices) {
    EXPECT_GT(device.overall_permille(), 0.0) << device.name;
    EXPECT_LT(device.overall_permille(), 5.0) << device.name;
  }
}

TEST(PolicyDrops, VpnGatewayDropsMoreThanBranch) {
  const PolicyDropResult result = run_policy_drops(tiny_spec());
  const auto& branch = result.devices[0];
  const auto& vpn = result.devices[1];
  EXPECT_GT(vpn.overall_permille(), branch.overall_permille());
}

TEST(PolicyDrops, PolicyUpdateCausesTransientSpikeThenDecay) {
  PolicyDropSpec spec = tiny_spec();
  spec.devices = {{.name = "campus", .users = 2000, .attempts_per_hour = 30,
                   .denied_pick_share = 0.002}};
  spec.days = 4;
  spec.policy_update_hour = 34;  // mid-trace, during working hours
  const PolicyDropResult result = run_policy_drops(spec);
  const auto& series = result.devices[0].drop_permille.points();

  auto window_mean = [&](unsigned lo, unsigned hi) {
    double acc = 0;
    unsigned n = 0;
    for (unsigned h = lo; h < hi && h < series.size(); ++h) {
      acc += series[h].value;
      ++n;
    }
    return acc / n;
  };
  const double before = window_mean(24, 34);
  const double during = window_mean(34, 40);
  const double after = window_mean(60, 84);
  EXPECT_GT(during, before);  // transient spike right after rollout
  EXPECT_LT(after, during);   // humans stop retrying: decay
}

TEST(PolicyDrops, NoUpdateMeansNoSpike) {
  PolicyDropSpec spec = tiny_spec();
  spec.policy_update_hour = -1;
  const PolicyDropResult result = run_policy_drops(spec);
  for (const auto& device : result.devices) {
    // Still some steady-state denied traffic, but bounded. Thin night
    // hours make single drops weigh several permille, hence the margin.
    EXPECT_LT(device.worst_hour_permille(), 60.0);
    EXPECT_LT(device.overall_permille(), 5.0);
  }
}

TEST(PolicyDrops, DeterministicForSeed) {
  const PolicyDropResult a = run_policy_drops(tiny_spec());
  const PolicyDropResult b = run_policy_drops(tiny_spec());
  EXPECT_EQ(a.devices[0].total_drops, b.devices[0].total_drops);
  EXPECT_EQ(a.devices[1].total_packets, b.devices[1].total_packets);
}

}  // namespace
}  // namespace sda::workload
