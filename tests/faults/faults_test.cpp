// Fault-injection plane and control-plane hardening tests.
//
// Covers the FaultPlane primitives in isolation (seeded loss/jitter, link
// and node flaps, server outage windows), the border resync protocol at the
// unit level (gap detection, retry-until-snapshot), and the three
// end-to-end acceptance scenarios: convergence under sustained control-
// plane loss, routing-server outages that stall but never lose state, and
// pub/sub feed disconnect/reconnect resyncing a border to the exact server
// state.
#include "faults/fault_plane.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "dataplane/border_router.hpp"
#include "fabric/fabric.hpp"
#include "lisp/messages.hpp"

namespace sda::faults {
namespace {

using net::Eid;
using net::GroupId;
using net::Ipv4Address;
using net::MacAddress;
using net::Rloc;
using net::VnEid;
using net::VnId;
using std::chrono::milliseconds;
using std::chrono::seconds;

// --- FaultPlane primitives -------------------------------------------------

Ipv4Address rloc(std::uint32_t i) { return Ipv4Address{0x0A000000u + i}; }
constexpr auto us50 = std::chrono::microseconds{50};

struct PlaneFixture : ::testing::Test {
  void SetUp() override {
    a = topo.add_node("a", rloc(1));
    b = topo.add_node("b", rloc(2));
    c = topo.add_node("c", rloc(3));
    ab = topo.add_link(a, b, us50);
    bc = topo.add_link(b, c, us50);
    net = std::make_unique<underlay::UnderlayNetwork>(sim, topo);
    plane = std::make_unique<FaultPlane>(sim, *net, 0xFA01);
  }

  int send_data(int count, Ipv4Address to) {
    int arrived = 0;
    for (int i = 0; i < count; ++i) {
      net->deliver(a, to, 0, 100, [&] { ++arrived; });
    }
    sim.run();
    return arrived;
  }

  sim::Simulator sim;
  underlay::Topology topo;
  underlay::NodeId a{}, b{}, c{};
  underlay::LinkId ab{}, bc{};
  std::unique_ptr<underlay::UnderlayNetwork> net;
  std::unique_ptr<FaultPlane> plane;
};

TEST_F(PlaneFixture, DataLossDoesNotTouchControlTraffic) {
  LossModel total;
  total.loss = 1.0;
  plane->set_data_loss(total);

  EXPECT_EQ(send_data(10, rloc(3)), 0);
  int control_arrived = 0;
  for (int i = 0; i < 10; ++i) {
    net->deliver(a, rloc(3), 0, 100, [&] { ++control_arrived; },
                 underlay::TrafficClass::Control);
  }
  sim.run();
  EXPECT_EQ(control_arrived, 10);
  EXPECT_EQ(plane->counters().data_drops, 10u);
  EXPECT_EQ(plane->counters().control_drops, 0u);
  EXPECT_EQ(net->fault_drops(), 10u);
}

TEST_F(PlaneFixture, DisarmRestoresLosslessDelivery) {
  LossModel total;
  total.loss = 1.0;
  plane->set_data_loss(total);
  EXPECT_EQ(send_data(5, rloc(3)), 0);
  plane->disarm();
  EXPECT_EQ(send_data(5, rloc(3)), 5);
}

TEST(FaultPlaneDeterminism, LossIsDeterministicForFixedSeed) {
  const auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim;
    underlay::Topology topo;
    const auto a = topo.add_node("a", rloc(1));
    const auto b = topo.add_node("b", rloc(2));
    topo.add_link(a, b, us50);
    underlay::UnderlayNetwork net{sim, topo};
    FaultPlane plane{sim, net, seed};
    LossModel lossy;
    lossy.loss = 0.3;
    plane.set_data_loss(lossy);
    int arrived = 0;
    for (int i = 0; i < 200; ++i) {
      net.deliver(a, rloc(2), 0, 100, [&] { ++arrived; });
    }
    sim.run();
    return std::pair{arrived, plane.counters().data_drops};
  };
  const auto first = run_once(42);
  EXPECT_EQ(first, run_once(42));
  EXPECT_GT(first.second, 0u);
  EXPECT_GT(first.first, 0);
  EXPECT_NE(first, run_once(43));
}

TEST_F(PlaneFixture, PerHopLossCompoundsWithPathLength) {
  LossModel per_hop;
  per_hop.per_hop_loss = 0.4;
  plane->set_data_loss(per_hop);
  // a->b crosses one link; a->c crosses two, so more packets must die.
  send_data(400, rloc(2));
  const auto one_hop_drops = plane->counters().data_drops;
  send_data(400, rloc(3));
  const auto two_hop_drops = plane->counters().data_drops - one_hop_drops;
  EXPECT_GT(one_hop_drops, 100u);  // ~40% of 400
  EXPECT_GT(two_hop_drops, one_hop_drops);
}

TEST_F(PlaneFixture, ExtraJitterDelaysButDelivers) {
  LossModel jittery;
  jittery.extra_jitter_chance = 1.0;
  jittery.extra_jitter_max = milliseconds{1};
  plane->set_data_loss(jittery);
  EXPECT_EQ(send_data(5, rloc(3)), 5);
  EXPECT_EQ(plane->counters().delays_injected, 5u);
}

TEST_F(PlaneFixture, FlapLinkDrivesWatcherTransitions) {
  std::vector<bool> states;
  net->watch(a, [&](Ipv4Address r, bool up) {
    if (r == rloc(3)) states.push_back(up);
  });
  FlapSchedule schedule;
  schedule.first_down = seconds{1};
  schedule.down_for = seconds{1};
  schedule.cycles = 2;  // down@1s up@2s down@3s up@4s
  plane->flap_link(bc, schedule);
  sim.run();
  EXPECT_EQ(plane->counters().link_transitions, 4u);
  ASSERT_EQ(states.size(), 4u);
  EXPECT_EQ(states, (std::vector<bool>{false, true, false, true}));
  EXPECT_TRUE(net->reachable(a, rloc(3)));
}

TEST_F(PlaneFixture, FlapNodeTakesItsRlocDown) {
  std::vector<bool> states;
  net->watch(a, [&](Ipv4Address r, bool up) {
    if (r == rloc(3)) states.push_back(up);
  });
  FlapSchedule schedule;
  schedule.first_down = seconds{1};
  schedule.down_for = seconds{1};
  plane->flap_node(c, schedule);
  sim.run();
  EXPECT_EQ(plane->counters().node_transitions, 2u);
  EXPECT_EQ(states, (std::vector<bool>{false, true}));
}

TEST_F(PlaneFixture, RandomLinkStormPicksDistinctLinks) {
  FlapSchedule schedule;
  schedule.first_down = seconds{1};
  schedule.down_for = milliseconds{500};
  const auto chosen = plane->random_link_storm(5, schedule, milliseconds{100});
  ASSERT_EQ(chosen.size(), 2u);  // the topology only has two links
  EXPECT_NE(chosen[0], chosen[1]);
  sim.run();
  EXPECT_EQ(plane->counters().link_transitions, 4u);
}

// --- Border resync protocol (unit level) -----------------------------------

VnEid overlay_eid(std::uint32_t host) {
  return VnEid{VnId{1}, Eid{Ipv4Address{0x0A640000u + host}}};
}

lisp::Publish publish_of(std::uint32_t host, std::uint32_t rloc_suffix, std::uint64_t seq) {
  lisp::Publish p;
  p.eid = overlay_eid(host);
  p.rlocs = {Rloc{rloc(rloc_suffix)}};
  p.ttl_seconds = 600;
  p.seq = seq;
  return p;
}

struct ResyncFixture : ::testing::Test {
  ResyncFixture() {
    dataplane::BorderRouterConfig cfg;
    cfg.name = "b0";
    cfg.rloc = rloc(1);
    cfg.resync_retry = seconds{1};
    border = std::make_unique<dataplane::BorderRouter>(sim, cfg);
    border->set_request_resync([this] { ++resync_calls; });
  }

  sim::Simulator sim;
  std::unique_ptr<dataplane::BorderRouter> border;
  int resync_calls = 0;
};

TEST_F(ResyncFixture, SequenceGapDiscardsUpdateAndRequestsResync) {
  border->receive_publish(publish_of(1, 2, 1));
  EXPECT_EQ(border->fib_size(), 1u);
  EXPECT_EQ(border->next_expected_seq(), 2u);

  border->receive_publish(publish_of(2, 2, 5));  // seq 2-4 lost in the feed
  EXPECT_EQ(border->counters().out_of_sequence, 1u);
  EXPECT_TRUE(border->resync_in_flight());
  EXPECT_EQ(resync_calls, 1);
  EXPECT_EQ(border->fib_size(), 1u);  // the gapped update must not apply
}

TEST_F(ResyncFixture, ResyncRetriesUntilSnapshotApplies) {
  border->receive_publish(publish_of(1, 2, 3));  // first seq seen != 1: gap
  EXPECT_EQ(resync_calls, 1);
  sim.run_until(sim::SimTime{milliseconds{3500}});
  EXPECT_GE(resync_calls, 3);  // retry timer keeps asking

  border->apply_snapshot({{overlay_eid(1), {}}, {overlay_eid(2), {}}}, 7);
  EXPECT_FALSE(border->resync_in_flight());
  EXPECT_EQ(border->fib_size(), 2u);
  EXPECT_EQ(border->next_expected_seq(), 7u);
  const int calls_at_snapshot = resync_calls;
  sim.run();
  EXPECT_EQ(resync_calls, calls_at_snapshot);  // retry timer cancelled

  border->receive_publish(publish_of(3, 2, 7));  // feed resumes in order
  EXPECT_EQ(border->fib_size(), 3u);
  EXPECT_EQ(border->counters().out_of_sequence, 1u);
}

TEST_F(ResyncFixture, PublishesDiscardedWhileResyncInFlight) {
  border->receive_publish(publish_of(1, 2, 4));  // gap -> resync in flight
  const auto applied = border->counters().publishes_applied;
  border->receive_publish(publish_of(2, 2, 5));
  border->receive_publish(publish_of(3, 2, 6));
  EXPECT_EQ(border->counters().publishes_applied, applied);
  EXPECT_EQ(border->counters().out_of_sequence, 1u);  // no double-counting
}

TEST_F(ResyncFixture, UnsequencedPublishBypassesGapCheck) {
  // seq == 0 marks a legacy/unsequenced update (direct test injection):
  // applied immediately, no resync machinery involved.
  border->receive_publish(publish_of(1, 2, 0));
  EXPECT_EQ(border->fib_size(), 1u);
  EXPECT_FALSE(border->resync_in_flight());
  EXPECT_EQ(resync_calls, 0);
}

// --- End-to-end acceptance scenarios ---------------------------------------

constexpr VnId kCorp{100};
constexpr GroupId kEmployees{10};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

struct ChaosFixture : ::testing::Test {
  void SetUp() override {
    fabric::FabricConfig cfg;
    // Generous retry budgets: the scenarios deliberately batter the
    // control plane and assert that nothing is ever permanently lost.
    cfg.map_request_retries = 8;
    cfg.map_register_retries = 10;
    configure(cfg);
    fabric = std::make_unique<fabric::SdaFabric>(sim, cfg);
    fabric->add_border("b0");
    fabric->add_edge("e0");
    fabric->add_edge("e1");
    fabric->add_edge("e2");
    fabric->link("e0", "b0");
    fabric->link("e1", "b0");
    fabric->link("e2", "b0");
    fabric->finalize();

    fabric->define_vn({kCorp, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
    provision("alice", mac(1));
    provision("bob", mac(2));
    provision("camera", mac(3));

    fabric->set_delivery_listener([this](const dataplane::AttachedEndpoint& e,
                                         const net::OverlayFrame&, sim::SimTime) {
      deliveries.push_back(e.credential);
    });
  }

  virtual void configure(fabric::FabricConfig&) {}

  void provision(const std::string& credential, MacAddress m) {
    fabric::EndpointDefinition def;
    def.credential = credential;
    def.secret = "pw";
    def.mac = m;
    def.vn = kCorp;
    def.group = kEmployees;
    fabric->provision_endpoint(def);
  }

  fabric::OnboardResult connect(const std::string& credential, const std::string& edge) {
    fabric::OnboardResult result;
    fabric->connect_endpoint(credential, edge, 1,
                             [&](const fabric::OnboardResult& r) { result = r; });
    sim.run();
    return result;
  }

  sim::Simulator sim;
  std::unique_ptr<fabric::SdaFabric> fabric;
  std::vector<std::string> deliveries;
};

TEST_F(ChaosFixture, ControlPlaneLossEventuallyResolvesEverything) {
  FaultPlane plane{sim, fabric->underlay(), 0xC0FFEE};
  LossModel lossy;
  lossy.loss = 0.2;  // 20% of every control-plane message vanishes
  plane.set_control_loss(lossy);

  const auto alice = connect("alice", "e0");
  const auto bob = connect("bob", "e1");
  ASSERT_TRUE(alice.success);
  ASSERT_TRUE(bob.success);
  EXPECT_EQ(fabric->map_server().mapping_count(kCorp), 2u);
  EXPECT_GT(plane.counters().control_drops, 0u);  // the plane really bit

  // Warm-up packet triggers the (lossy, retried) Map-Request; the backoff
  // machinery must land the resolution despite drops in either direction.
  fabric->endpoint_send_udp(mac(1), bob.ip, 443, 100);
  sim.run();
  EXPECT_GE(fabric->edge("e0").fib_size(), 1u);

  // Once resolved, the data plane (lossless here) must deliver 100%.
  deliveries.clear();
  for (int i = 0; i < 20; ++i) fabric->endpoint_send_udp(mac(1), bob.ip, 443, 100);
  sim.run();
  EXPECT_EQ(deliveries.size(), 20u);
  EXPECT_EQ(fabric->edge("e0").counters().registers_acked,
            fabric->edge("e0").counters().registers_sent);
}

TEST_F(ChaosFixture, ServerOutageStallsButNeverLosesState) {
  FaultPlane plane{sim, fabric->underlay(), 7};
  const auto alice = connect("alice", "e0");
  const auto bob = connect("bob", "e1");
  ASSERT_TRUE(alice.success && bob.success);
  (void)alice;

  // 3-second routing-server blackout. During it: a new endpoint onboards
  // (its Map-Register is swallowed) and alice resolves bob (her
  // Map-Request is swallowed). Both must complete after the window.
  plane.server_outage(fabric->map_server_node(), sim::Duration{0}, seconds{3});
  fabric::OnboardResult camera;
  sim.schedule_after(milliseconds{10}, [&] {
    fabric->connect_endpoint("camera", "e2", 1,
                             [&](const fabric::OnboardResult& r) { camera = r; });
    fabric->endpoint_send_udp(mac(1), bob.ip, 443, 100);
  });
  sim.run();

  EXPECT_TRUE(camera.success);
  EXPECT_GT(camera.elapsed, seconds{2});  // stalled behind the outage
  EXPECT_EQ(fabric->map_server().mapping_count(kCorp), 3u);
  EXPECT_GT(fabric->map_server_node().dropped_submissions(), 0u);
  // The in-outage packet still arrived: default-routed and hairpinned by
  // the border, whose FIB predates the outage.
  EXPECT_EQ(deliveries, std::vector<std::string>{"bob"});
  // ...and the stalled Map-Request resolved once the server returned.
  EXPECT_GE(fabric->edge("e0").fib_size(), 1u);
}

struct ChaosRefreshFixture : ChaosFixture {
  void configure(fabric::FabricConfig& cfg) override {
    cfg.register_refresh_interval = seconds{2};
  }
};

TEST_F(ChaosRefreshFixture, ColdCrashRebuildsDatabaseFromReRegisters) {
  // The refresh timer re-arms forever, so this test must drive the clock
  // with run_until() instead of draining the queue with run().
  FaultPlane plane{sim, fabric->underlay(), 7};
  fabric->connect_endpoint("alice", "e0", 1);
  fabric->connect_endpoint("bob", "e1", 1);
  sim.run_until(sim.now() + seconds{1});
  ASSERT_EQ(fabric->map_server().mapping_count(kCorp), 2u);

  // Crash losing the registration database; back after 500ms. The edges'
  // periodic soft-state refresh must repopulate it.
  plane.server_crash(fabric->map_server_node(), sim::Duration{0}, milliseconds{500},
                     /*preserve_database=*/false);
  sim.run_until(sim.now() + milliseconds{100});
  EXPECT_EQ(fabric->map_server().mapping_count(kCorp), 0u);
  EXPECT_FALSE(fabric->map_server_node().online());

  sim.run_until(sim.now() + seconds{6});  // refresh timers are perpetual
  EXPECT_TRUE(fabric->map_server_node().online());
  EXPECT_EQ(fabric->map_server().mapping_count(kCorp), 2u);
}

TEST_F(ChaosFixture, BorderFeedReconnectResyncsToExactServerState) {
  const auto alice = connect("alice", "e0");
  connect("bob", "e1");
  (void)alice;
  ASSERT_EQ(fabric->border("b0").fib_size(), 2u);

  // Cut the feed, then churn the registration state behind its back.
  fabric->set_border_feed_connected("b0", false);
  EXPECT_FALSE(fabric->border_feed_connected("b0"));
  connect("camera", "e2");
  fabric->disconnect_endpoint(mac(2));  // bob leaves
  sim.run();
  EXPECT_GT(fabric->border_publishes_dropped("b0"), 0u);
  // Stale view: still has bob, never saw camera.
  EXPECT_EQ(fabric->border("b0").fib_size(), 2u);
  EXPECT_EQ(fabric->map_server().mapping_count(kCorp), 2u);  // alice + camera

  fabric->set_border_feed_connected("b0", true);
  sim.run();

  // Entry-by-entry equality with the authoritative server database.
  std::unordered_map<VnEid, lisp::MappingRecord> server_state;
  fabric->map_server().walk([&](const VnEid& e, const lisp::MappingRecord& r) {
    server_state.emplace(e, r);
  });
  const auto& synced = fabric->border("b0").synced();
  EXPECT_EQ(synced.size(), server_state.size());
  for (const auto& [eid, record] : server_state) {
    const auto it = synced.find(eid);
    ASSERT_NE(it, synced.end()) << "border missing " << eid.to_string();
    ASSERT_EQ(it->second.rlocs.size(), record.rlocs.size());
    for (std::size_t i = 0; i < record.rlocs.size(); ++i) {
      EXPECT_EQ(it->second.rlocs[i].address, record.rlocs[i].address);
    }
  }
  EXPECT_GE(fabric->border("b0").counters().snapshots_applied, 1u);
  EXPECT_FALSE(fabric->border("b0").resync_in_flight());
  EXPECT_EQ(fabric->border("b0").next_expected_seq(), fabric->publish_seq() + 1);

  // The live feed resumes gap-free after the snapshot.
  provision("dan", mac(4));
  connect("dan", "e0");
  EXPECT_EQ(fabric->border("b0").fib_size(), 3u);
  EXPECT_EQ(fabric->border("b0").counters().out_of_sequence, 0u);
}

}  // namespace
}  // namespace sda::faults
