// Partition-tolerant control plane (PR 9), end to end on a real fabric:
// quorum elections refusing minority leadership, leaderless telemetry
// while a candidacy stalls, log-based catch-up repairing a lagging
// replica by delta replay, and snapshot fallback past the log horizon.
//
// Election, heartbeat, and anti-entropy timers are perpetual, so every
// test here drives the clock with run_until() (never run()).
#include <gtest/gtest.h>

#include <string>

#include "fabric/fabric.hpp"
#include "fabric/inspect.hpp"
#include "faults/fault_plane.hpp"

namespace sda::faults {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;
using std::chrono::milliseconds;
using std::chrono::seconds;

constexpr VnId kCorp{100};
constexpr GroupId kEmployees{10};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

fabric::FabricConfig quorum_config(std::size_t servers) {
  fabric::FabricConfig cfg;
  cfg.routing_servers = servers;
  cfg.ha.failover = true;
  cfg.ha.heartbeat_interval = milliseconds{100};
  cfg.ha.heartbeat_timeout = milliseconds{20};
  cfg.ha.down_after_misses = 3;
  cfg.ha.up_after_acks = 4;
  cfg.ha.anti_entropy_interval = milliseconds{500};
  cfg.ha.election = true;
  cfg.ha.election_heartbeat_interval = milliseconds{100};
  cfg.ha.election_timeout = milliseconds{400};
  cfg.ha.election_claim_timeout = milliseconds{60};
  cfg.ha.election_quorum = true;
  cfg.map_request_retries = 8;
  cfg.map_register_retries = 10;
  return cfg;
}

// Three borders so each of the three routing servers gets its own
// underlay node (server i homes on border i) — partitioning one border
// isolates exactly one replica.
struct QuorumFixture : ::testing::Test {
  void SetUp() override { build(quorum_config(3), /*borders=*/3); }

  void build(const fabric::FabricConfig& cfg, int borders) {
    fabric = std::make_unique<fabric::SdaFabric>(sim, cfg);
    for (int b = 0; b < borders; ++b) fabric->add_border("b" + std::to_string(b));
    for (int e = 0; e < 4; ++e) {
      const std::string name = "e" + std::to_string(e);
      fabric->add_edge(name);
      for (int b = 0; b < borders; ++b) fabric->link(name, "b" + std::to_string(b));
    }
    for (int b = 0; b < borders; ++b) {
      for (int o = b + 1; o < borders; ++o) {
        fabric->link("b" + std::to_string(b), "b" + std::to_string(o));
      }
    }
    fabric->finalize();
    fabric->define_vn({kCorp, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  }

  void provision(const std::string& credential, MacAddress m) {
    fabric::EndpointDefinition def;
    def.credential = credential;
    def.secret = "pw";
    def.mac = m;
    def.vn = kCorp;
    def.group = kEmployees;
    fabric->provision_endpoint(def);
  }

  fabric::OnboardResult connect(const std::string& credential, const std::string& edge) {
    fabric::OnboardResult result;
    fabric->connect_endpoint(credential, edge, 1,
                             [&](const fabric::OnboardResult& r) { result = r; });
    run_for(seconds{2});
    return result;
  }

  void run_for(sim::Duration d) { sim.run_until(sim.now() + d); }

  sim::Simulator sim;
  std::unique_ptr<fabric::SdaFabric> fabric;
};

TEST_F(QuorumFixture, PartitionedMinorityNeverElectsItself) {
  const auto* ha = fabric->ha_monitor();
  ASSERT_NE(ha, nullptr);
  ASSERT_TRUE(ha->quorum_enabled());

  provision("alice", mac(1));
  ASSERT_TRUE(connect("alice", "e0").success);
  EXPECT_EQ(ha->leader(), 0u);
  EXPECT_FALSE(ha->quorum_lost());

  // Partition replica 2's border away: the one-node minority loses the
  // leader's asserts, opens term after term, and every candidacy must
  // stall on a failed quorum — it can never believe it leads.
  FaultPlane plane{sim, fabric->underlay(), 0x0B09};
  const auto b2_node =
      fabric->underlay().topology().node_by_loopback(fabric->border("b2").rloc());
  ASSERT_TRUE(b2_node.has_value());
  plane.partition_node(*b2_node, sim::Duration{0}, seconds{6});

  run_for(seconds{3});  // inside the partition window
  EXPECT_FALSE(ha->node_believes_leader(2));
  EXPECT_GE(ha->counters().quorum_stalls, 1u);
  EXPECT_EQ(ha->counters().minority_leaders, 0u);
  EXPECT_TRUE(ha->quorum_lost());
  // The two-node majority keeps its leader and keeps serving: this
  // onboard runs entirely inside the partition window.
  EXPECT_EQ(ha->leader(), 0u);
  provision("bob", mac(2));
  EXPECT_TRUE(connect("bob", "e1").success);
  EXPECT_EQ(fabric->stale_epoch_acks_accepted(), 0u);

  // Mid-partition telemetry: the quorum gauge reads lost, the invariant
  // stays green (a stall is not a breach — a minority *win* would be).
  EXPECT_TRUE(ha->quorum_lost());
  const auto snapshot = fabric->metrics().snapshot();
  EXPECT_EQ(snapshot.gauges.at("ha.election.quorum"), 0.0);
  EXPECT_GE(snapshot.counters.at("ha.quorum_stalls"), 1u);
  EXPECT_EQ(snapshot.counters.at("ha.minority_leaders"), 0u);
  for (const auto& v : fabric->telemetry().assurance.evaluate_invariants()) {
    if (v.name == "no-minority-leader") EXPECT_TRUE(v.pass) << v.detail;
  }

  // Heal: the minority's inflated term forces one quorate re-election;
  // the cluster reconverges with quorum restored.
  run_for(seconds{4});
  EXPECT_EQ(ha->leader(), 0u);
  EXPECT_FALSE(ha->quorum_lost());
  EXPECT_EQ(ha->counters().minority_leaders, 0u);
  EXPECT_TRUE(ha->node_believes_leader(0));
  EXPECT_FALSE(ha->node_believes_leader(2));

  // The stall and the recovery both hit the flight recorder.
  const std::string log = fabric->flight_recorder().dump();
  EXPECT_NE(log.find("quorum-lost"), std::string::npos);
  EXPECT_NE(log.find("quorum-regained"), std::string::npos);
}

// Two-node quorum cluster: when the peer dies no majority exists at all,
// so the survivor must stall leaderless rather than elect itself.
struct TwoNodeQuorumFixture : QuorumFixture {
  void SetUp() override { build(quorum_config(2), /*borders=*/2); }
};

TEST_F(TwoNodeQuorumFixture, SurvivorStallsLeaderlessUntilPeerReturns) {
  const auto* ha = fabric->ha_monitor();
  provision("alice", mac(1));
  ASSERT_TRUE(connect("alice", "e0").success);
  EXPECT_EQ(ha->leader(), 0u);

  // Kill the leader. The survivor opens a term but can never collect a
  // majority (it alone is 1 of 2): leaderless, with the gauges saying so.
  fabric->map_server_node(0).set_online(false);
  run_for(seconds{3});
  EXPECT_FALSE(ha->has_leader());
  EXPECT_EQ(ha->leader(), fabric::HaMonitor::kNoLeader);
  EXPECT_TRUE(ha->quorum_lost());
  EXPECT_GE(ha->counters().quorum_stalls, 1u);
  EXPECT_EQ(ha->counters().minority_leaders, 0u);

  const auto snapshot = fabric->metrics().snapshot();
  EXPECT_EQ(snapshot.gauges.at("ha.election.leader"), -1.0);  // leaderless
  EXPECT_EQ(snapshot.gauges.at("ha.election.quorum"), 0.0);

  // The leaderless state surfaces in the operator inspect() report.
  const std::string report = fabric::inspect(*fabric, {});
  EXPECT_NE(report.find("leader none"), std::string::npos);
  EXPECT_NE(report.find("quorum LOST"), std::string::npos);

  // Peer returns: the next candidacy collects its vote and wins.
  fabric->map_server_node(0).set_online(true);
  run_for(seconds{4});
  EXPECT_TRUE(ha->has_leader());
  EXPECT_FALSE(ha->quorum_lost());
  const auto healed = fabric->metrics().snapshot();
  EXPECT_GE(healed.gauges.at("ha.election.leader"), 0.0);
  EXPECT_EQ(healed.gauges.at("ha.election.quorum"), 1.0);
}

// --- Log-based catch-up on a live fabric ------------------------------------

struct CatchupFixture : QuorumFixture {
  void SetUp() override {
    fabric::FabricConfig cfg = quorum_config(2);
    cfg.ha.election = false;  // isolate catch-up from election churn
    cfg.ha.election_quorum = false;
    cfg.ha.catchup_log_capacity = 256;
    build(cfg, /*borders=*/2);
  }
};

TEST_F(CatchupFixture, LaggingReplicaRepairsByDeltaReplayNotSnapshot) {
  const auto* ha = fabric->ha_monitor();
  provision("alice", mac(1));
  ASSERT_TRUE(connect("alice", "e0").success);
  run_for(seconds{1});  // anti-entropy records the replica as caught up

  // Replica 1 reboots (database preserved) across two onboards.
  fabric->map_server_node(1).set_online(false);
  provision("bob", mac(2));
  provision("carol", mac(3));
  ASSERT_TRUE(connect("bob", "e1").success);
  ASSERT_TRUE(connect("carol", "e2").success);
  const auto before = ha->counters();
  fabric->map_server_node(1).set_online(true);
  run_for(seconds{2});

  // The lag was repaired by replaying the leader's log delta — not by a
  // snapshot exchange — and the replica converged.
  const auto& after = ha->counters();
  EXPECT_GE(after.catchup_replays, before.catchup_replays + 1);
  EXPECT_GE(after.catchup_entries_replayed, before.catchup_entries_replayed + 2);
  EXPECT_EQ(after.catchup_snapshot_fallbacks, before.catchup_snapshot_fallbacks);
  EXPECT_EQ(ha->last_divergence(), 0u);
  EXPECT_EQ(fabric->map_server_replica(1).mapping_count(kCorp), 3u);
}

}  // namespace
}  // namespace sda::faults
