// Control-plane high availability (PR 4), end to end on a real fabric:
// heartbeat-driven routing-server failover with fail-back hysteresis,
// replica anti-entropy after a cold crash, overload shedding under an
// onboarding storm, and fail-open vs fail-closed policy during a
// policy-server outage.
//
// The HA heartbeat and anti-entropy timers are perpetual, so every HA test
// drives the clock with run_until() (never run(), which would spin).
#include <gtest/gtest.h>

#include "faults/fault_plane.hpp"
#include "fabric/fabric.hpp"

namespace sda::faults {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;
using std::chrono::milliseconds;
using std::chrono::seconds;

constexpr VnId kCorp{100};
constexpr GroupId kEmployees{10};
constexpr GroupId kGuests{20};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

struct HaFixture : ::testing::Test {
  void SetUp() override {
    fabric::FabricConfig cfg;
    cfg.routing_servers = 2;
    cfg.ha.failover = true;
    cfg.ha.heartbeat_interval = milliseconds{100};
    cfg.ha.heartbeat_timeout = milliseconds{20};
    cfg.ha.down_after_misses = 3;
    cfg.ha.up_after_acks = 4;
    cfg.ha.anti_entropy_interval = milliseconds{500};
    cfg.map_request_retries = 8;
    cfg.map_register_retries = 10;
    configure(cfg);
    fabric = std::make_unique<fabric::SdaFabric>(sim, cfg);
    fabric->add_border("b0");
    fabric->add_border("b1");
    for (int e = 0; e < 4; ++e) {
      const std::string name = "e" + std::to_string(e);
      fabric->add_edge(name);
      fabric->link(name, "b0");
      fabric->link(name, "b1");
    }
    fabric->link("b0", "b1");
    fabric->finalize();
    fabric->define_vn({kCorp, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
    fabric->set_delivery_listener([this](const dataplane::AttachedEndpoint& e,
                                         const net::OverlayFrame&, sim::SimTime) {
      deliveries.push_back(e.credential);
    });
  }

  virtual void configure(fabric::FabricConfig&) {}

  void provision(const std::string& credential, MacAddress m,
                 GroupId group = kEmployees) {
    fabric::EndpointDefinition def;
    def.credential = credential;
    def.secret = "pw";
    def.mac = m;
    def.vn = kCorp;
    def.group = group;
    fabric->provision_endpoint(def);
  }

  fabric::OnboardResult connect(const std::string& credential, const std::string& edge) {
    fabric::OnboardResult result;
    fabric->connect_endpoint(credential, edge, 1,
                             [&](const fabric::OnboardResult& r) { result = r; });
    run_for(seconds{2});
    return result;
  }

  void run_for(sim::Duration d) { sim.run_until(sim.now() + d); }

  sim::Simulator sim;
  std::unique_ptr<fabric::SdaFabric> fabric;
  std::vector<std::string> deliveries;
};

TEST_F(HaFixture, FailoverAfterMissesAndFailBackWithHysteresis) {
  ASSERT_NE(fabric->ha_monitor(), nullptr);
  const auto* ha = fabric->ha_monitor();
  run_for(seconds{1});
  EXPECT_TRUE(ha->server_up(0));
  EXPECT_TRUE(ha->server_up(1));
  EXPECT_GT(ha->counters().heartbeats_sent, 0u);
  EXPECT_EQ(ha->active_server_for(0), 0u);

  // Server 0 goes dark (the probe already in flight counts as miss #1).
  // Two misses are not enough...
  fabric->map_server_node(0).set_online(false);
  run_for(milliseconds{150});
  EXPECT_TRUE(ha->server_up(0));
  // ...the third is: declared down, requests repoint at the replica.
  run_for(milliseconds{350});
  EXPECT_FALSE(ha->server_up(0));
  EXPECT_EQ(ha->counters().failovers, 1u);
  EXPECT_EQ(ha->active_server_for(0), 1u);
  EXPECT_EQ(ha->active_server_for(1), 1u);

  // Recovery: a couple of answered heartbeats must NOT flap traffic back.
  fabric->map_server_node(0).set_online(true);
  run_for(milliseconds{150});
  EXPECT_FALSE(ha->server_up(0));
  // After up_after_acks consecutive answers, fail-back.
  run_for(milliseconds{650});
  EXPECT_TRUE(ha->server_up(0));
  EXPECT_EQ(ha->counters().failbacks, 1u);
  EXPECT_EQ(ha->active_server_for(0), 0u);
}

struct HaClassicLispFixture : HaFixture {
  void configure(fabric::FabricConfig& cfg) override {
    // No border default route: delivery requires an actual resolution, so
    // a successful send proves the Map-Request found a live server.
    cfg.default_route_fallback = false;
    cfg.pending_packet_limit = 8;
  }
};

TEST_F(HaClassicLispFixture, RequestsAndRegistrationsRideReplicaDuringOutage) {
  provision("alice", mac(1));
  provision("bob", mac(2));
  provision("camera", mac(3));
  const auto alice = connect("alice", "e0");  // e0's group is server 0's
  const auto bob = connect("bob", "e1");
  ASSERT_TRUE(alice.success && bob.success);

  // Kill server 0 and wait for the heartbeat verdict.
  fabric->map_server_node(0).set_online(false);
  run_for(seconds{1});
  ASSERT_FALSE(fabric->ha_monitor()->server_up(0));

  // alice's edge is homed on the dead server; her first packet parks while
  // the Map-Request rides the replica, then flushes on the Map-Reply.
  fabric->endpoint_send_udp(mac(1), bob.ip, 443, 100);
  run_for(seconds{1});
  EXPECT_EQ(deliveries, std::vector<std::string>{"bob"});
  EXPECT_GE(fabric->edge("e0").fib_size(), 1u);
  EXPECT_GT(fabric->edge("e0").counters().packets_parked, 0u);
  EXPECT_GT(fabric->edge("e0").counters().parked_flushed, 0u);

  // A registration issued during the outage is acked by the replica, so
  // onboarding completes while the primary is down.
  const auto camera = connect("camera", "e0");
  EXPECT_TRUE(camera.success);
  EXPECT_EQ(fabric->map_server_replica(1).mapping_count(kCorp), 3u);
}

TEST_F(HaFixture, AntiEntropyRepairsReplicaAfterColdCrash) {
  provision("alice", mac(1));
  provision("bob", mac(2));
  provision("camera", mac(3));
  ASSERT_TRUE(connect("alice", "e0").success);
  ASSERT_TRUE(connect("bob", "e1").success);

  // Replica server crashes losing its database; a registration lands
  // while it is down (the fan-out copy addressed to it is swallowed).
  fabric->map_server_node(1).crash(/*preserve_database=*/false);
  run_for(seconds{1});
  ASSERT_TRUE(connect("camera", "e2").success);
  EXPECT_EQ(fabric->map_server_replica(0).mapping_count(kCorp), 3u);
  EXPECT_EQ(fabric->map_server_replica(1).mapping_count(kCorp), 0u);
  EXPECT_NE(fabric->map_server_replica(0).digest(), fabric->map_server_replica(1).digest());

  // Restart. The next anti-entropy round (every 500ms) must reconcile the
  // replica back to entry-by-entry equality with the primary.
  fabric->map_server_node(1).set_online(true);
  run_for(seconds{1});
  EXPECT_EQ(fabric->map_server_replica(1).mapping_count(kCorp), 3u);
  EXPECT_EQ(fabric->map_server_replica(0).digest(), fabric->map_server_replica(1).digest());
  fabric->map_server_replica(0).walk([&](const net::VnEid& eid,
                                         const lisp::MappingRecord& rec) {
    const auto mirrored = fabric->map_server_replica(1).resolve(eid);
    ASSERT_TRUE(mirrored.has_value());
    EXPECT_TRUE(lisp::equivalent(rec, *mirrored));
  });

  // Convergence is visible in telemetry: repairs counted, and the
  // divergence gauge returns to zero once replicas agree again.
  const auto snapshot = fabric->metrics().snapshot();
  EXPECT_GE(snapshot.counters.at("ha.anti_entropy_repairs"), 3u);
  EXPECT_GT(snapshot.counters.at("ha.anti_entropy_rounds"), 0u);
  run_for(seconds{1});  // one more (clean) round
  EXPECT_EQ(fabric->ha_monitor()->last_divergence(), 0u);
}

// --- Border default-route failover (underlay reachability, no HA timers) ---

struct BorderFailoverFixture : HaFixture {
  void configure(fabric::FabricConfig& cfg) override {
    cfg.routing_servers = 1;
    cfg.ha = fabric::HaConfig{};  // heartbeats off: plain run() works
  }
};

TEST_F(BorderFailoverFixture, DefaultRouteRepointsToLiveBorderAndFailsBack) {
  provision("alice", mac(1));
  provision("bob", mac(2));
  ASSERT_TRUE(connect("alice", "e0").success);
  const auto bob = connect("bob", "e1");
  ASSERT_TRUE(bob.success);
  const auto b0_rloc = fabric->edge("e0").active_border_rloc();

  // Primary border's node goes dark for 2s; the IGP reachability watcher
  // tells every edge, which repoints its default route at the live border.
  FaultPlane plane{sim, fabric->underlay(), 0xB0};
  FlapSchedule schedule;
  schedule.down_for = seconds{2};
  const auto b0_node =
      fabric->underlay().topology().node_by_loopback(fabric->border("b0").rloc());
  ASSERT_TRUE(b0_node.has_value());
  plane.flap_node(*b0_node, schedule);
  run_for(seconds{1});
  EXPECT_GE(fabric->edge("e0").counters().border_failovers, 1u);
  EXPECT_NE(fabric->edge("e0").active_border_rloc(), b0_rloc);

  // Cold traffic rides the surviving border's default route meanwhile.
  fabric->endpoint_send_udp(mac(1), bob.ip, 443, 100);
  run_for(milliseconds{500});
  EXPECT_EQ(deliveries, std::vector<std::string>{"bob"});

  // Border returns: deterministic fail-back to the primary.
  run_for(seconds{2});
  EXPECT_GE(fabric->edge("e0").counters().border_failbacks, 1u);
  EXPECT_EQ(fabric->edge("e0").active_border_rloc(), b0_rloc);
}

// --- Overload-safe degradation (no HA timers: plain run() is fine) ---------

struct StormFixture : HaFixture {
  void configure(fabric::FabricConfig& cfg) override {
    cfg.routing_servers = 1;
    cfg.ha = fabric::HaConfig{};  // heartbeats off
    cfg.map_server.workers = 1;
    // Slow the server down so the storm actually builds a backlog: 24
    // near-simultaneous registers against a 5ms service / 4-slot queue.
    cfg.map_server.request_service = milliseconds{2};
    cfg.map_server.register_service = milliseconds{5};
    cfg.map_server.admission_limit = 4;
    cfg.map_server.shed_retry_after = milliseconds{100};
    cfg.map_register_retries = 12;
  }
};

TEST_F(StormFixture, OnboardingStormShedsButEveryEndpointCompletes) {
  constexpr int kHosts = 24;
  for (int i = 0; i < kHosts; ++i) {
    provision("h" + std::to_string(i), mac(static_cast<std::uint64_t>(i) + 1));
  }
  int succeeded = 0;
  for (int i = 0; i < kHosts; ++i) {
    fabric->connect_endpoint("h" + std::to_string(i), "e" + std::to_string(i % 4), 1,
                             [&](const fabric::OnboardResult& r) {
                               if (r.success) ++succeeded;
                             });
  }
  sim.run();
  // The storm hit the admission limit: registers were shed with explicit
  // retry-after hints, the edges backed off and retried, and every single
  // onboarding still completed.
  EXPECT_EQ(succeeded, kHosts);
  EXPECT_GT(fabric->map_server_node().shed_submissions(), 0u);
  EXPECT_EQ(fabric->map_server().mapping_count(kCorp), static_cast<std::size_t>(kHosts));
  std::uint64_t busy = 0;
  for (const auto& name : fabric->edge_names()) {
    busy += fabric->edge(name).counters().server_busy;
  }
  EXPECT_GT(busy, 0u);
}

// --- Policy-server outage: fail-open vs fail-closed ------------------------

struct PolicyOutageFixture : HaFixture {
  void configure(fabric::FabricConfig& cfg) override {
    cfg.routing_servers = 1;
    cfg.ha = fabric::HaConfig{};
    cfg.rule_retry_interval = milliseconds{500};
    cfg.policy_fail_mode = mode();
  }
  virtual dataplane::PolicyFailMode mode() const { return dataplane::PolicyFailMode::Open; }

  /// Onboards alice/bob, then retags bob to kGuests while the policy
  /// server is in an outage window — the hosting edge's rule download for
  /// the new group is refused, so the SGACL fail mode decides bob's fate.
  void retag_during_outage() {
    provision("alice", mac(1));
    provision("bob", mac(2));
    fabric->set_rule({kCorp, kEmployees, kGuests, policy::Action::Allow});
    alice = connect("alice", "e0");
    bob = connect("bob", "e1");
    ASSERT_TRUE(alice.success && bob.success);

    plane = std::make_unique<FaultPlane>(sim, fabric->underlay(), 0xFA11);
    plane->policy_server_outage(fabric->policy_server(), sim::Duration{0}, seconds{2});
    run_for(milliseconds{10});
    ASSERT_FALSE(fabric->policy_server().online());
    ASSERT_TRUE(fabric->reassign_endpoint_group("bob", kGuests));
    run_for(milliseconds{200});  // CoA + retag land; download refused
    ASSERT_GT(fabric->edge("e1").counters().rule_download_failures, 0u);
  }

  fabric::OnboardResult alice, bob;
  std::unique_ptr<FaultPlane> plane;
};

TEST_F(PolicyOutageFixture, FailOpenKeepsTrafficFlowing) {
  retag_during_outage();
  fabric->endpoint_send_udp(mac(1), bob.ip, 443, 100);
  run_for(milliseconds{500});
  EXPECT_EQ(deliveries, std::vector<std::string>{"bob"});
  EXPECT_EQ(fabric->edge("e1").sgacl().counters().fail_closed_drops, 0u);
}

struct PolicyFailClosedFixture : PolicyOutageFixture {
  dataplane::PolicyFailMode mode() const override {
    return dataplane::PolicyFailMode::Closed;
  }
};

TEST_F(PolicyFailClosedFixture, FailClosedDropsUntilRulesArrive) {
  retag_during_outage();
  fabric->endpoint_send_udp(mac(1), bob.ip, 443, 100);
  run_for(milliseconds{500});
  // Rules for bob's new group are missing (not merely unmatched): deny.
  EXPECT_TRUE(deliveries.empty());
  EXPECT_GT(fabric->edge("e1").sgacl().counters().fail_closed_drops, 0u);

  // The outage heals; the edge's retry timer downloads the rules and the
  // same traffic now passes.
  run_for(seconds{3});
  EXPECT_GT(fabric->edge("e1").counters().rule_download_retries, 0u);
  fabric->endpoint_send_udp(mac(1), bob.ip, 443, 100);
  run_for(milliseconds{500});
  EXPECT_EQ(deliveries, std::vector<std::string>{"bob"});
}

}  // namespace
}  // namespace sda::faults
