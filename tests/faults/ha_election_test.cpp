// Elected-primary control plane (PR 6), end to end on a real fabric:
// leader election converging after the leader crashes or is partitioned
// away, epoch fencing rejecting a resurrected stale leader's acks and
// feed pushes, BGP-style flap dampening holding an oscillating server
// out of rotation, and seeded determinism of the whole machinery.
//
// Election, heartbeat, and anti-entropy timers are perpetual, so every
// test here drives the clock with run_until() (never run()).
#include <gtest/gtest.h>

#include "faults/fault_plane.hpp"
#include "fabric/fabric.hpp"

namespace sda::faults {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;
using std::chrono::milliseconds;
using std::chrono::seconds;

constexpr VnId kCorp{100};
constexpr GroupId kEmployees{10};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

fabric::FabricConfig election_config() {
  fabric::FabricConfig cfg;
  cfg.routing_servers = 2;
  cfg.ha.failover = true;
  cfg.ha.heartbeat_interval = milliseconds{100};
  cfg.ha.heartbeat_timeout = milliseconds{20};
  cfg.ha.down_after_misses = 3;
  cfg.ha.up_after_acks = 4;
  cfg.ha.anti_entropy_interval = milliseconds{500};
  cfg.ha.election = true;
  cfg.ha.election_heartbeat_interval = milliseconds{100};
  cfg.ha.election_timeout = milliseconds{400};
  cfg.ha.election_claim_timeout = milliseconds{60};
  cfg.map_request_retries = 8;
  cfg.map_register_retries = 10;
  return cfg;
}

struct ElectionFixture : ::testing::Test {
  void SetUp() override {
    fabric::FabricConfig cfg = election_config();
    configure(cfg);
    build(cfg);
  }

  void build(const fabric::FabricConfig& cfg) {
    fabric = std::make_unique<fabric::SdaFabric>(sim, cfg);
    fabric->add_border("b0");
    fabric->add_border("b1");
    for (int e = 0; e < 4; ++e) {
      const std::string name = "e" + std::to_string(e);
      fabric->add_edge(name);
      fabric->link(name, "b0");
      fabric->link(name, "b1");
    }
    fabric->link("b0", "b1");
    fabric->finalize();
    fabric->define_vn({kCorp, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  }

  virtual void configure(fabric::FabricConfig&) {}

  void provision(const std::string& credential, MacAddress m) {
    fabric::EndpointDefinition def;
    def.credential = credential;
    def.secret = "pw";
    def.mac = m;
    def.vn = kCorp;
    def.group = kEmployees;
    fabric->provision_endpoint(def);
  }

  fabric::OnboardResult connect(const std::string& credential, const std::string& edge) {
    fabric::OnboardResult result;
    fabric->connect_endpoint(credential, edge, 1,
                             [&](const fabric::OnboardResult& r) { result = r; });
    run_for(seconds{2});
    return result;
  }

  void run_for(sim::Duration d) { sim.run_until(sim.now() + d); }

  sim::Simulator sim;
  std::unique_ptr<fabric::SdaFabric> fabric;
};

TEST_F(ElectionFixture, LeaderCrashElectsReplicaAndControlPlaneResumes) {
  ASSERT_NE(fabric->ha_monitor(), nullptr);
  const auto* ha = fabric->ha_monitor();
  ASSERT_TRUE(ha->election_enabled());

  provision("alice", mac(1));
  provision("bob", mac(2));
  ASSERT_TRUE(connect("alice", "e0").success);
  ASSERT_TRUE(connect("bob", "e1").success);

  // Steady state: server 0 leads on the initial term, no elections yet.
  EXPECT_EQ(ha->leader(), 0u);
  EXPECT_EQ(ha->epoch(), 1u);
  EXPECT_EQ(ha->counters().elections_started, 0u);

  // Kill the leader. The follower watchdog (jittered around the 400ms
  // election timeout) opens a new term and, unchallenged, wins it.
  fabric->map_server_node(0).set_online(false);
  run_for(seconds{3});
  EXPECT_EQ(ha->leader(), 1u);
  EXPECT_GE(ha->epoch(), 2u);
  EXPECT_GE(ha->counters().elections_started, 1u);
  EXPECT_GE(ha->counters().leaders_elected, 1u);

  // The control plane resumes under the new term: registrations are acked
  // by the new leader (onboarding completes), and its pub/sub feed carries
  // the new mapping to every border under the new epoch.
  provision("camera", mac(3));
  ASSERT_TRUE(connect("camera", "e2").success);
  EXPECT_EQ(fabric->map_server_replica(1).mapping_count(kCorp), 3u);
  for (const auto& name : fabric->border_names()) {
    const auto& border = fabric->border(name);
    EXPECT_GE(border.feed_epoch(), 2u) << name;
    EXPECT_EQ(border.fib_size(), 3u) << name;
  }
  EXPECT_EQ(fabric->stale_epoch_acks_accepted(), 0u);

  // The election surfaces in telemetry.
  const auto snapshot = fabric->metrics().snapshot();
  EXPECT_GE(snapshot.gauges.at("ha.election.term"), 2.0);
  EXPECT_EQ(snapshot.gauges.at("ha.election.leader"), 1.0);
  EXPECT_GE(snapshot.counters.at("ha.leaders_elected"), 1u);
}

TEST_F(ElectionFixture, PartitionedLeaderIsDeposedAndFencedOnHeal) {
  const auto* ha = fabric->ha_monitor();
  provision("alice", mac(1));
  provision("bob", mac(2));
  ASSERT_TRUE(connect("alice", "e0").success);
  ASSERT_TRUE(connect("bob", "e1").success);

  // Partition the leader's node away: the process keeps running (and keeps
  // believing it leads — split-brain), but its asserts stop arriving.
  FaultPlane plane{sim, fabric->underlay(), 0xE1EC};
  const auto b0_node =
      fabric->underlay().topology().node_by_loopback(fabric->border("b0").rloc());
  ASSERT_TRUE(b0_node.has_value());
  plane.partition_node(*b0_node, sim::Duration{0}, seconds{3});
  run_for(seconds{3});  // partition window: replica takes over
  EXPECT_EQ(ha->leader(), 1u);
  EXPECT_GE(ha->epoch(), 2u);
  EXPECT_TRUE(ha->node_believes_leader(0));  // the stale side still believes

  // Heal. The resurrected leader asserts its old term into the newer
  // cluster: rejected (epoch fence), counter-asserted, and deposed — it
  // adopts the new term instead of clawing leadership back (stickiness).
  run_for(seconds{2});
  EXPECT_FALSE(ha->node_believes_leader(0));
  EXPECT_EQ(ha->leader(), 1u);
  EXPECT_GE(ha->counters().epoch_rejections, 1u);
  EXPECT_EQ(fabric->stale_epoch_acks_accepted(), 0u);

  // Whatever the deposed leader pushed while stale was fenced or
  // superseded: every border converged onto the new leader's feed.
  for (const auto& name : fabric->border_names()) {
    EXPECT_GE(fabric->border(name).feed_epoch(), 2u) << name;
  }
}

// --- Flap dampening ---------------------------------------------------------

struct DampeningFixture : ElectionFixture {
  void configure(fabric::FabricConfig& cfg) override {
    cfg.ha.election = false;  // isolate the dampening mechanism
    cfg.ha.dampening = true;
    cfg.ha.dampening_penalty = 1000.0;
    cfg.ha.dampening_suppress = 1500.0;
    cfg.ha.dampening_reuse = 500.0;
    cfg.ha.dampening_half_life = seconds{1};
  }
};

TEST_F(DampeningFixture, OscillatingServerCausesAtMostOneFailover) {
  const auto* ha = fabric->ha_monitor();
  run_for(milliseconds{500});
  ASSERT_TRUE(ha->server_up(0));

  // Oscillate server 0 at the miss/ack boundary: down long enough to be
  // declared dead, up long enough to pass the fail-back hysteresis, thrice.
  // Without dampening this is 3 failovers and 3 failbacks of churn.
  FaultPlane plane{sim, fabric->underlay(), 0xDA};
  plane.server_oscillation(fabric->map_server_node(0), milliseconds{100},
                           /*down_for=*/milliseconds{400}, /*up_for=*/milliseconds{600},
                           /*cycles=*/3);
  run_for(seconds{4});

  // One failover, then the hold-down absorbs the rest of the churn.
  EXPECT_EQ(ha->counters().failovers, 1u);
  EXPECT_GE(ha->counters().suppressions, 1u);
  EXPECT_TRUE(ha->server_up(0));  // healthy again, but...
  EXPECT_TRUE(ha->suppressed(0));  // ...held down until the penalty decays
  EXPECT_EQ(ha->active_server_for(0), 1u);
  EXPECT_EQ(ha->counters().failbacks, 0u);

  const auto snapshot = fabric->metrics().snapshot();
  EXPECT_EQ(snapshot.gauges.at("ha.dampening.suppressed"), 1.0);

  // The penalty halves every second; once below reuse the server is
  // released and the deferred fail-back finally returns traffic to it.
  run_for(seconds{4});
  EXPECT_FALSE(ha->suppressed(0));
  EXPECT_EQ(ha->counters().failbacks, 1u);
  EXPECT_EQ(ha->active_server_for(0), 0u);
  EXPECT_EQ(ha->counters().failovers, 1u);  // still exactly one
}

// --- Epoch fencing unit coverage -------------------------------------------

TEST(EpochFence, BorderRejectsStaleEpochAndRehomesOnNewer) {
  sim::Simulator sim;
  dataplane::BorderRouterConfig cfg;
  cfg.name = "b";
  cfg.rloc = net::Ipv4Address{10, 0, 0, 1};
  dataplane::BorderRouter border{sim, cfg};

  lisp::Publish publish;
  publish.eid = net::VnEid{kCorp, net::Eid{net::Ipv4Address{10, 100, 0, 5}}};
  publish.rlocs = {net::Rloc{net::Ipv4Address{10, 0, 0, 254}, 1, 1}};
  publish.ttl_seconds = 60;

  // First epoch observation adopts silently (election coming up
  // mid-stream is not a re-home).
  publish.seq = 1;
  publish.epoch = 1;
  EXPECT_TRUE(border.receive_publish(publish));
  EXPECT_EQ(border.feed_epoch(), 1u);
  EXPECT_EQ(border.fib_size(), 1u);
  EXPECT_FALSE(border.resync_in_flight());

  // Stale epoch (a deposed leader's push): rejected, FIB untouched.
  lisp::Publish stale = publish;
  stale.seq = 2;
  stale.epoch = 0;  // unfenced still applies...
  EXPECT_TRUE(border.receive_publish(stale));
  stale.epoch = 1;
  stale.seq = 3;
  EXPECT_TRUE(border.receive_publish(stale));
  border.apply_snapshot({}, 4, 5);  // feed now fenced at term 5
  stale.epoch = 1;
  stale.seq = 4;
  EXPECT_FALSE(border.receive_publish(stale));
  EXPECT_EQ(border.counters().stale_epoch_rejected, 1u);

  // Newer epoch: the feed re-homed — discard the update, pull a snapshot.
  lisp::Publish newer = publish;
  newer.seq = 4;
  newer.epoch = 7;
  EXPECT_TRUE(border.receive_publish(newer));
  EXPECT_EQ(border.feed_epoch(), 7u);
  EXPECT_TRUE(border.resync_in_flight());
}

TEST(EpochFence, EdgeRejectsStaleEpochAcks) {
  sim::Simulator sim;
  dataplane::EdgeRouterConfig cfg;
  cfg.name = "e";
  cfg.rloc = net::Ipv4Address{10, 0, 0, 2};
  dataplane::EdgeRouter edge{sim, cfg};

  const net::VnEid eid{kCorp, net::Eid{net::Ipv4Address{10, 100, 0, 9}}};
  lisp::MapNotify notify{1, eid, {net::Rloc{cfg.rloc, 1, 1}}, 3};
  EXPECT_TRUE(edge.receive_map_notify(notify));
  EXPECT_EQ(edge.control_epoch(), 3u);

  // The cluster moves on to term 5 (leader announce); a term-4 ack from a
  // deposed leader must be fenced, an unfenced (epoch 0) ack still works.
  edge.observe_control_epoch(5);
  lisp::MapNotify stale{2, eid, {net::Rloc{cfg.rloc, 1, 1}}, 4};
  EXPECT_FALSE(edge.receive_map_notify(stale));
  EXPECT_EQ(edge.counters().stale_epoch_rejected, 1u);
  lisp::MapNotify unfenced{3, eid, {net::Rloc{cfg.rloc, 1, 1}}, 0};
  EXPECT_TRUE(edge.receive_map_notify(unfenced));
  lisp::MapNotify current{4, eid, {net::Rloc{cfg.rloc, 1, 1}}, 5};
  EXPECT_TRUE(edge.receive_map_notify(current));
  EXPECT_EQ(edge.control_epoch(), 5u);
}

TEST(EpochFence, MessagesCarryEpochOnTheWire) {
  const net::VnEid eid{kCorp, net::Eid{net::Ipv4Address{10, 100, 0, 9}}};
  const lisp::MapNotify notify{9, eid, {net::Rloc{net::Ipv4Address{10, 0, 0, 254}, 1, 1}}, 42};
  const auto notify_decoded = lisp::decode_message(lisp::encode_message(lisp::Message{notify}));
  ASSERT_TRUE(notify_decoded.has_value());
  EXPECT_EQ(std::get<lisp::MapNotify>(*notify_decoded), notify);
  EXPECT_EQ(std::get<lisp::MapNotify>(*notify_decoded).epoch, 42u);

  lisp::Publish publish;
  publish.eid = eid;
  publish.rlocs = {net::Rloc{net::Ipv4Address{10, 0, 0, 254}, 1, 1}};
  publish.ttl_seconds = 60;
  publish.seq = 17;
  publish.epoch = 6;
  const auto publish_decoded = lisp::decode_message(lisp::encode_message(lisp::Message{publish}));
  ASSERT_TRUE(publish_decoded.has_value());
  EXPECT_EQ(std::get<lisp::Publish>(*publish_decoded), publish);
  EXPECT_EQ(std::get<lisp::Publish>(*publish_decoded).epoch, 6u);
}

// --- Seeded determinism -----------------------------------------------------

struct ElectionRunResult {
  std::string flight_log;
  std::uint64_t executed_events = 0;
  std::uint64_t epoch = 0;
  std::size_t leader = 0;
  std::uint64_t elections = 0;
};

ElectionRunResult run_election_scenario(std::uint64_t seed) {
  sim::Simulator sim;
  fabric::FabricConfig cfg = election_config();
  cfg.seed = seed;
  fabric::SdaFabric fabric{sim, cfg};
  fabric.add_border("b0");
  fabric.add_border("b1");
  for (int e = 0; e < 4; ++e) {
    const std::string name = "e" + std::to_string(e);
    fabric.add_edge(name);
    fabric.link(name, "b0");
    fabric.link(name, "b1");
  }
  fabric.link("b0", "b1");
  fabric.finalize();
  fabric.define_vn({kCorp, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  for (int i = 0; i < 3; ++i) {
    fabric::EndpointDefinition def;
    def.credential = "h" + std::to_string(i);
    def.secret = "pw";
    def.mac = mac(static_cast<std::uint64_t>(i) + 1);
    def.vn = kCorp;
    def.group = kEmployees;
    fabric.provision_endpoint(def);
    fabric.connect_endpoint(def.credential, "e" + std::to_string(i % 4), 1);
  }
  sim.run_until(sim.now() + seconds{2});
  fabric.map_server_node(0).set_online(false);  // kill the leader
  sim.run_until(sim.now() + seconds{3});
  fabric.map_server_node(0).set_online(true);  // stale resurrection
  sim.run_until(sim.now() + seconds{2});

  ElectionRunResult result;
  result.flight_log = fabric.flight_recorder().dump();
  result.executed_events = sim.executed_events();
  result.epoch = fabric.ha_monitor()->epoch();
  result.leader = fabric.ha_monitor()->leader();
  result.elections = fabric.ha_monitor()->counters().elections_started;
  return result;
}

TEST(ElectionDeterminism, SameSeedSameLeaderSameFlightLog) {
  const ElectionRunResult a = run_election_scenario(1234);
  const ElectionRunResult b = run_election_scenario(1234);
  EXPECT_GE(a.epoch, 2u);
  EXPECT_EQ(a.leader, 1u);
  EXPECT_EQ(a.flight_log, b.flight_log);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.elections, b.elections);
}

}  // namespace
}  // namespace sda::faults
