#include "trie/patricia.hpp"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <unordered_map>

#include "sim/random.hpp"

namespace sda::trie {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;

BitKey host(const char* ip) { return BitKey::from_ipv4(*Ipv4Address::parse(ip)); }
BitKey pfx(const char* cidr) { return BitKey::from_ipv4_prefix(*Ipv4Prefix::parse(cidr)); }

TEST(PatriciaTrie, EmptyBehaviour) {
  PatriciaTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.find_exact(host("10.0.0.1")), nullptr);
  EXPECT_FALSE(trie.longest_match(host("10.0.0.1")).has_value());
  EXPECT_FALSE(trie.erase(host("10.0.0.1")));
}

TEST(PatriciaTrie, InsertAndExactMatch) {
  PatriciaTrie<int> trie;
  EXPECT_TRUE(trie.insert(host("10.0.0.1"), 1));
  EXPECT_TRUE(trie.insert(host("10.0.0.2"), 2));
  EXPECT_EQ(trie.size(), 2u);
  ASSERT_NE(trie.find_exact(host("10.0.0.1")), nullptr);
  EXPECT_EQ(*trie.find_exact(host("10.0.0.1")), 1);
  EXPECT_EQ(*trie.find_exact(host("10.0.0.2")), 2);
  EXPECT_EQ(trie.find_exact(host("10.0.0.3")), nullptr);
}

TEST(PatriciaTrie, InsertReplacesValue) {
  PatriciaTrie<int> trie;
  EXPECT_TRUE(trie.insert(host("10.0.0.1"), 1));
  EXPECT_FALSE(trie.insert(host("10.0.0.1"), 9));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find_exact(host("10.0.0.1")), 9);
}

TEST(PatriciaTrie, PrefixAndHostCoexist) {
  PatriciaTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  trie.insert(host("10.1.2.3"), 32);
  EXPECT_EQ(*trie.find_exact(pfx("10.0.0.0/8")), 8);
  EXPECT_EQ(*trie.find_exact(pfx("10.1.0.0/16")), 16);
  EXPECT_EQ(*trie.find_exact(host("10.1.2.3")), 32);
  // Same bits, different length: distinct entries.
  EXPECT_EQ(trie.find_exact(pfx("10.0.0.0/9")), nullptr);
}

TEST(PatriciaTrie, LongestMatchPicksMostSpecific) {
  PatriciaTrie<int> trie;
  trie.insert(pfx("0.0.0.0/0"), 0);
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  trie.insert(host("10.1.2.3"), 32);

  EXPECT_EQ(*trie.longest_match(host("10.1.2.3"))->second, 32);
  EXPECT_EQ(*trie.longest_match(host("10.1.9.9"))->second, 16);
  EXPECT_EQ(*trie.longest_match(host("10.200.0.1"))->second, 8);
  EXPECT_EQ(*trie.longest_match(host("192.168.0.1"))->second, 0);
}

TEST(PatriciaTrie, LongestMatchReturnsCoveringPrefixKey) {
  PatriciaTrie<int> trie;
  trie.insert(pfx("10.1.0.0/16"), 16);
  const auto match = trie.longest_match(host("10.1.42.42"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, pfx("10.1.0.0/16"));
}

TEST(PatriciaTrie, NoMatchWithoutDefaultRoute) {
  PatriciaTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  EXPECT_FALSE(trie.longest_match(host("192.168.0.1")).has_value());
}

TEST(PatriciaTrie, EraseLeafAndCollapse) {
  PatriciaTrie<int> trie;
  trie.insert(host("10.0.0.1"), 1);
  trie.insert(host("10.0.0.2"), 2);
  trie.insert(host("10.0.0.3"), 3);
  EXPECT_TRUE(trie.erase(host("10.0.0.2")));
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_EQ(trie.find_exact(host("10.0.0.2")), nullptr);
  EXPECT_EQ(*trie.find_exact(host("10.0.0.1")), 1);
  EXPECT_EQ(*trie.find_exact(host("10.0.0.3")), 3);
  EXPECT_FALSE(trie.erase(host("10.0.0.2")));
}

TEST(PatriciaTrie, EraseInternalValueKeepsChildren) {
  PatriciaTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(host("10.0.0.1"), 1);
  trie.insert(host("10.0.0.2"), 2);
  EXPECT_TRUE(trie.erase(pfx("10.0.0.0/8")));
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_EQ(*trie.find_exact(host("10.0.0.1")), 1);
  EXPECT_FALSE(trie.longest_match(host("10.9.9.9")).has_value());
}

TEST(PatriciaTrie, WalkVisitsInKeyOrder) {
  PatriciaTrie<int> trie;
  trie.insert(host("10.0.0.9"), 9);
  trie.insert(host("10.0.0.1"), 1);
  trie.insert(pfx("10.0.0.0/24"), 24);
  trie.insert(host("10.0.0.5"), 5);
  std::vector<int> seen;
  trie.walk([&](const BitKey&, const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{24, 1, 5, 9}));  // prefix first, then hosts ascending
}

TEST(PatriciaTrie, EraseIf) {
  PatriciaTrie<int> trie;
  for (int i = 0; i < 10; ++i) {
    trie.insert(host(("10.0.0." + std::to_string(i)).c_str()), i);
  }
  const std::size_t removed = trie.erase_if([](const BitKey&, const int& v) { return v % 2 == 0; });
  EXPECT_EQ(removed, 5u);
  EXPECT_EQ(trie.size(), 5u);
  EXPECT_EQ(trie.find_exact(host("10.0.0.4")), nullptr);
  EXPECT_NE(trie.find_exact(host("10.0.0.5")), nullptr);
}

TEST(PatriciaTrie, ClearAndReuse) {
  PatriciaTrie<int> trie;
  for (int i = 0; i < 100; ++i) trie.insert(host(("10.1.0." + std::to_string(i)).c_str()), i);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_TRUE(trie.insert(host("10.0.0.1"), 1));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PatriciaTrie, MoveSemantics) {
  PatriciaTrie<int> a;
  a.insert(host("10.0.0.1"), 1);
  PatriciaTrie<int> b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_NE(b.find_exact(host("10.0.0.1")), nullptr);
}

// Property test: the trie must agree with a reference std::map on a random
// workload of inserts, erases, exact lookups and LPM queries.
struct TrieFuzzCase {
  std::uint64_t seed;
  int operations;
};

class PatriciaFuzz : public ::testing::TestWithParam<TrieFuzzCase> {};

TEST_P(PatriciaFuzz, AgreesWithReferenceModel) {
  sim::Rng rng{GetParam().seed};
  PatriciaTrie<int> trie;
  std::map<std::pair<std::uint32_t, std::uint8_t>, int> reference;  // (addr, len) -> value

  auto random_key = [&rng] {
    // Concentrated key space to force shared prefixes and splits.
    const auto addr = static_cast<std::uint32_t>(0x0A000000u | rng.next_below(1 << 12));
    const auto len = static_cast<std::uint8_t>(rng.chance(0.3) ? 8 + rng.next_below(24) : 32);
    return Ipv4Prefix{Ipv4Address{addr}, len};
  };

  for (int op = 0; op < GetParam().operations; ++op) {
    const Ipv4Prefix prefix = random_key();
    const BitKey key = BitKey::from_ipv4_prefix(prefix);
    const auto ref_key = std::make_pair(prefix.address().value(), prefix.length());
    const int roll = static_cast<int>(rng.next_below(10));

    if (roll < 5) {  // insert
      const int value = static_cast<int>(rng.next_below(1000));
      const bool was_new = trie.insert(key, value);
      EXPECT_EQ(was_new, reference.find(ref_key) == reference.end());
      reference[ref_key] = value;
    } else if (roll < 7) {  // erase
      const bool erased = trie.erase(key);
      EXPECT_EQ(erased, reference.erase(ref_key) > 0);
    } else if (roll < 9) {  // exact lookup
      const int* found = trie.find_exact(key);
      const auto it = reference.find(ref_key);
      if (it == reference.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    } else {  // longest-prefix match vs brute force
      const auto addr = static_cast<std::uint32_t>(0x0A000000u | rng.next_below(1 << 12));
      const BitKey probe = BitKey::from_ipv4(Ipv4Address{addr});
      std::optional<int> best;
      int best_len = -1;
      for (const auto& [k, v] : reference) {
        const Ipv4Prefix p{Ipv4Address{k.first}, k.second};
        if (p.contains(Ipv4Address{addr}) && k.second > best_len) {
          best = v;
          best_len = k.second;
        }
      }
      const auto match = trie.longest_match(probe);
      EXPECT_EQ(match.has_value(), best.has_value());
      if (match && best) {
        EXPECT_EQ(*match->second, *best);
        EXPECT_EQ(match->first.prefix_len(), best_len);
      }
    }
    ASSERT_EQ(trie.size(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, PatriciaFuzz,
                         ::testing::Values(TrieFuzzCase{1, 2000}, TrieFuzzCase{2, 2000},
                                           TrieFuzzCase{3, 5000}, TrieFuzzCase{4, 5000},
                                           TrieFuzzCase{99, 10000}));

TEST(PatriciaTrie, HandlesLargeHostPopulation) {
  PatriciaTrie<int> trie;
  for (std::uint32_t i = 0; i < 20000; ++i) {
    trie.insert(BitKey::from_ipv4(Ipv4Address{0x0A000000u + i}), static_cast<int>(i));
  }
  EXPECT_EQ(trie.size(), 20000u);
  for (std::uint32_t i = 0; i < 20000; i += 997) {
    const int* v = trie.find_exact(BitKey::from_ipv4(Ipv4Address{0x0A000000u + i}));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, static_cast<int>(i));
  }
}

TEST(PatriciaTrie, MacKeyedTrie) {
  PatriciaTrie<int> trie;
  trie.insert(BitKey::from_mac(net::MacAddress::from_u64(0x02AA)), 1);
  trie.insert(BitKey::from_mac(net::MacAddress::from_u64(0x02AB)), 2);
  EXPECT_EQ(*trie.find_exact(BitKey::from_mac(net::MacAddress::from_u64(0x02AB))), 2);
  EXPECT_EQ(trie.find_exact(BitKey::from_mac(net::MacAddress::from_u64(0x02AC))), nullptr);
}

}  // namespace
}  // namespace sda::trie
