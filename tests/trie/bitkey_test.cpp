#include "trie/bitkey.hpp"

#include <gtest/gtest.h>

namespace sda::trie {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;
using net::MacAddress;

TEST(BitKey, Ipv4HostKeyBits) {
  const BitKey key = BitKey::from_ipv4(Ipv4Address{0b10000000, 0, 0, 1});
  EXPECT_EQ(key.width(), 32);
  EXPECT_EQ(key.prefix_len(), 32);
  EXPECT_TRUE(key.is_host());
  EXPECT_TRUE(key.bit(0));
  EXPECT_FALSE(key.bit(1));
  EXPECT_TRUE(key.bit(31));
}

TEST(BitKey, PrefixZeroesHostBits) {
  const BitKey a = BitKey::from_ipv4(*Ipv4Address::parse("10.1.2.3"), 16);
  const BitKey b = BitKey::from_ipv4(*Ipv4Address::parse("10.1.9.9"), 16);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.is_host());
}

TEST(BitKey, NonByteAlignedPrefixCanonicalization) {
  const BitKey a = BitKey::from_ipv4(*Ipv4Address::parse("10.0.0.0"), 10);
  const BitKey b = BitKey::from_ipv4(*Ipv4Address::parse("10.63.255.255"), 10);
  const BitKey c = BitKey::from_ipv4(*Ipv4Address::parse("10.64.0.0"), 10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(BitKey, CommonPrefixLen) {
  const BitKey a = BitKey::from_ipv4(*Ipv4Address::parse("10.0.0.0"), 32);
  const BitKey b = BitKey::from_ipv4(*Ipv4Address::parse("10.0.0.1"), 32);
  EXPECT_EQ(a.common_prefix_len(b), 31);
  const BitKey c = BitKey::from_ipv4(*Ipv4Address::parse("10.0.0.0"), 32);
  EXPECT_EQ(a.common_prefix_len(c), 32);
  const BitKey d = BitKey::from_ipv4(*Ipv4Address::parse("192.0.0.0"), 32);
  EXPECT_EQ(a.common_prefix_len(d), 0);
}

TEST(BitKey, CommonPrefixLenCappedByShorter) {
  const BitKey p8 = BitKey::from_ipv4(*Ipv4Address::parse("10.0.0.0"), 8);
  const BitKey host = BitKey::from_ipv4(*Ipv4Address::parse("10.1.2.3"), 32);
  EXPECT_EQ(p8.common_prefix_len(host), 8);
}

TEST(BitKey, Contains) {
  const BitKey p16 = BitKey::from_ipv4_prefix(*Ipv4Prefix::parse("10.1.0.0/16"));
  EXPECT_TRUE(p16.contains(BitKey::from_ipv4(*Ipv4Address::parse("10.1.200.3"))));
  EXPECT_FALSE(p16.contains(BitKey::from_ipv4(*Ipv4Address::parse("10.2.0.0"))));
  EXPECT_TRUE(p16.contains(p16));
  const BitKey p8 = BitKey::from_ipv4_prefix(*Ipv4Prefix::parse("10.0.0.0/8"));
  EXPECT_FALSE(p16.contains(p8));
  EXPECT_TRUE(p8.contains(p16));
}

TEST(BitKey, DefaultRouteContainsEverything) {
  const BitKey def = BitKey::from_ipv4_prefix(*Ipv4Prefix::parse("0.0.0.0/0"));
  EXPECT_EQ(def.prefix_len(), 0);
  EXPECT_TRUE(def.contains(BitKey::from_ipv4(*Ipv4Address::parse("255.255.255.255"))));
}

TEST(BitKey, ContainsRequiresSameFamily) {
  const BitKey v4 = BitKey::from_ipv4(*Ipv4Address::parse("10.0.0.0"), 8);
  const BitKey mac = BitKey::from_mac(MacAddress::from_u64(0x0A0000000000ull));
  EXPECT_FALSE(v4.contains(mac));
}

TEST(BitKey, Truncated) {
  const BitKey host = BitKey::from_ipv4(*Ipv4Address::parse("10.1.2.3"));
  const BitKey t = host.truncated(16);
  EXPECT_EQ(t.prefix_len(), 16);
  EXPECT_EQ(t, BitKey::from_ipv4(*Ipv4Address::parse("10.1.0.0"), 16));
  EXPECT_TRUE(t.contains(host));
}

TEST(BitKey, MacKeys) {
  const BitKey key = BitKey::from_mac(MacAddress::from_u64(0x8000'0000'0001ull));
  EXPECT_EQ(key.width(), 48);
  EXPECT_TRUE(key.is_host());
  EXPECT_TRUE(key.bit(0));
  EXPECT_TRUE(key.bit(47));
  EXPECT_FALSE(key.bit(1));
}

TEST(BitKey, Ipv6Keys) {
  const BitKey key = BitKey::from_ipv6(*net::Ipv6Address::parse("8000::1"));
  EXPECT_EQ(key.width(), 128);
  EXPECT_TRUE(key.bit(0));
  EXPECT_TRUE(key.bit(127));
  const BitKey p64 = BitKey::from_ipv6(*net::Ipv6Address::parse("2001:db8::"), 64);
  EXPECT_TRUE(p64.contains(BitKey::from_ipv6(*net::Ipv6Address::parse("2001:db8::42"))));
  EXPECT_FALSE(p64.contains(BitKey::from_ipv6(*net::Ipv6Address::parse("2001:db9::42"))));
}

TEST(BitKey, FromEidDispatchesOnFamily) {
  EXPECT_EQ(BitKey::from_eid(net::Eid{Ipv4Address{1, 2, 3, 4}}).width(), 32);
  EXPECT_EQ(BitKey::from_eid(net::Eid{*net::Ipv6Address::parse("::1")}).width(), 128);
  EXPECT_EQ(BitKey::from_eid(net::Eid{MacAddress::from_u64(5)}).width(), 48);
}

TEST(BitKey, CommonPrefixExhaustiveOnBytePattern) {
  // For every split point, two keys differing exactly at bit i must report
  // a common prefix of i.
  const auto base = *Ipv4Address::parse("170.85.170.85");  // 10101010...
  const BitKey a = BitKey::from_ipv4(base);
  for (std::uint16_t i = 0; i < 32; ++i) {
    const std::uint32_t flipped = base.value() ^ (1u << (31 - i));
    const BitKey b = BitKey::from_ipv4(Ipv4Address{flipped});
    EXPECT_EQ(a.common_prefix_len(b), i) << "bit " << i;
  }
}

}  // namespace
}  // namespace sda::trie
