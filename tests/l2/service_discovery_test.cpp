#include "l2/service_discovery.hpp"

#include <gtest/gtest.h>

#include "fabric/fabric.hpp"

namespace sda::l2 {
namespace {

using net::GroupId;
using net::Ipv4Address;
using net::MacAddress;
using net::VnId;

ServiceInstance printer(const char* name, std::uint64_t mac_suffix) {
  return ServiceInstance{"_ipp._tcp", name, *Ipv4Address::parse("10.100.0.5"), 631,
                         MacAddress::from_u64(0x0200'0000'0000ull | mac_suffix)};
}

TEST(ServiceRegistry, AdvertiseQueryWithdraw) {
  ServiceRegistry registry;
  registry.advertise(VnId{1}, printer("alice-printer", 1));
  registry.advertise(VnId{1}, printer("bob-printer", 2));
  registry.advertise(VnId{1}, {"_airplay._tcp", "tv", *Ipv4Address::parse("10.100.0.9"), 7000,
                               MacAddress::from_u64(3)});

  const auto printers = registry.query(VnId{1}, "_ipp._tcp");
  ASSERT_EQ(printers.size(), 2u);
  EXPECT_EQ(printers[0].name, "alice-printer");  // name-ordered
  EXPECT_EQ(printers[1].name, "bob-printer");
  EXPECT_EQ(registry.query(VnId{1}, "_airplay._tcp").size(), 1u);
  EXPECT_TRUE(registry.query(VnId{1}, "_ssh._tcp").empty());

  EXPECT_TRUE(registry.withdraw(VnId{1}, "_ipp._tcp", "alice-printer"));
  EXPECT_FALSE(registry.withdraw(VnId{1}, "_ipp._tcp", "alice-printer"));
  EXPECT_EQ(registry.query(VnId{1}, "_ipp._tcp").size(), 1u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ServiceRegistry, VnIsolation) {
  ServiceRegistry registry;
  registry.advertise(VnId{1}, printer("p", 1));
  EXPECT_TRUE(registry.query(VnId{2}, "_ipp._tcp").empty());
}

TEST(ServiceRegistry, ReAdvertiseReplaces) {
  ServiceRegistry registry;
  registry.advertise(VnId{1}, printer("p", 1));
  ServiceInstance moved = printer("p", 1);
  moved.address = *Ipv4Address::parse("10.100.0.77");
  registry.advertise(VnId{1}, moved);
  const auto found = registry.query(VnId{1}, "_ipp._tcp");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].address, *Ipv4Address::parse("10.100.0.77"));
}

TEST(ServiceRegistry, WithdrawProviderRemovesAllItsServices) {
  ServiceRegistry registry;
  registry.advertise(VnId{1}, printer("p1", 1));
  registry.advertise(VnId{1}, {"_http._tcp", "web", *Ipv4Address::parse("10.100.0.5"), 80,
                               MacAddress::from_u64(0x0200'0000'0001ull)});
  registry.advertise(VnId{1}, printer("p2", 2));
  EXPECT_EQ(registry.withdraw_provider(VnId{1}, MacAddress::from_u64(0x0200'0000'0001ull)), 2u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ServiceDiscoveryWire, QueryAndResponseRoundTrip) {
  const ServiceQuery query{VnId{100}, "_ipp._tcp"};
  net::ByteWriter w;
  query.encode(w);
  net::ByteReader r{w.data()};
  EXPECT_EQ(ServiceQuery::decode(r), query);

  ServiceResponse response;
  response.instances = {printer("a", 1), printer("b", 2)};
  net::ByteWriter w2;
  response.encode(w2);
  net::ByteReader r2{w2.data()};
  EXPECT_EQ(ServiceResponse::decode(r2), response);

  // Truncation safety.
  const auto& full = w2.data();
  for (std::size_t len = 0; len < full.size(); ++len) {
    net::ByteReader rr{std::span<const std::uint8_t>{full.data(), len}};
    EXPECT_FALSE(ServiceResponse::decode(rr).has_value()) << len;
  }
}

// --- Fabric integration ----------------------------------------------------

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

struct DiscoveryFixture : ::testing::Test {
  void SetUp() override {
    fabric = std::make_unique<fabric::SdaFabric>(sim, fabric::FabricConfig{});
    fabric->add_border("b0");
    fabric->add_edge("e0");
    fabric->add_edge("e1");
    fabric->link("e0", "b0");
    fabric->link("e1", "b0");
    fabric->finalize();
    fabric->define_vn({VnId{100}, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
    fabric->define_vn({VnId{200}, "guest", *net::Ipv4Prefix::parse("10.200.0.0/16")});
    provision("printer-host", mac(1), VnId{100});
    provision("laptop", mac(2), VnId{100});
    provision("guest", mac(3), VnId{200});
    connect("printer-host", "e0");
    connect("laptop", "e1");
    connect("guest", "e1");
  }

  void provision(const std::string& credential, MacAddress m, VnId vn) {
    fabric->provision_endpoint({credential, "pw", m, vn, GroupId{10}});
  }
  void connect(const std::string& credential, const std::string& edge) {
    fabric->connect_endpoint(credential, edge, 1);
    sim.run();
  }

  sim::Simulator sim;
  std::unique_ptr<fabric::SdaFabric> fabric;
};

TEST_F(DiscoveryFixture, CrossEdgeDiscoveryWithoutBroadcast) {
  ASSERT_TRUE(fabric->advertise_service(mac(1), "_ipp._tcp", "hall-printer", 631));
  sim.run();

  std::vector<ServiceInstance> found;
  ASSERT_TRUE(fabric->endpoint_query_service(mac(2), "_ipp._tcp",
                                             [&](std::vector<ServiceInstance> r) {
                                               found = std::move(r);
                                             }));
  EXPECT_TRUE(found.empty());  // answer arrives only after the control RTT
  sim.run();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].name, "hall-printer");
  EXPECT_EQ(found[0].port, 631);
  EXPECT_EQ(found[0].provider, mac(1));
  // No data-plane broadcast was involved at all.
  EXPECT_EQ(fabric->edge("e0").counters().encapsulated, 0u);
  EXPECT_EQ(fabric->edge("e1").counters().encapsulated, 0u);
}

TEST_F(DiscoveryFixture, QueriesAreVnScoped) {
  ASSERT_TRUE(fabric->advertise_service(mac(1), "_ipp._tcp", "hall-printer", 631));
  sim.run();
  std::vector<ServiceInstance> found{printer("sentinel", 9)};
  ASSERT_TRUE(fabric->endpoint_query_service(mac(3), "_ipp._tcp",
                                             [&](std::vector<ServiceInstance> r) {
                                               found = std::move(r);
                                             }));
  sim.run();
  EXPECT_TRUE(found.empty());  // guest VN sees nothing from corp
}

TEST_F(DiscoveryFixture, DisconnectWithdrawsServices) {
  ASSERT_TRUE(fabric->advertise_service(mac(1), "_ipp._tcp", "hall-printer", 631));
  sim.run();
  EXPECT_EQ(fabric->service_registry().size(), 1u);
  fabric->disconnect_endpoint(mac(1));
  sim.run();
  EXPECT_EQ(fabric->service_registry().size(), 0u);
}

TEST_F(DiscoveryFixture, DetachedEndpointCannotUseDiscovery) {
  fabric->disconnect_endpoint(mac(2));
  sim.run();
  EXPECT_FALSE(fabric->advertise_service(mac(2), "_x._tcp", "x", 1));
  EXPECT_FALSE(fabric->endpoint_query_service(mac(2), "_x._tcp", {}));
}

}  // namespace
}  // namespace sda::l2
