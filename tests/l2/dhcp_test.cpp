#include "l2/dhcp.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sda::l2 {
namespace {

using net::Ipv4Prefix;
using net::MacAddress;
using net::VnId;

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

struct DhcpFixture : ::testing::Test {
  void SetUp() override { server.add_pool(VnId{1}, *Ipv4Prefix::parse("10.1.0.0/24")); }
  DhcpServer server;
};

TEST_F(DhcpFixture, AcquiresAddressInsidePool) {
  const auto ip = server.acquire(VnId{1}, mac(1));
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(Ipv4Prefix::parse("10.1.0.0/24")->contains(*ip));
  EXPECT_EQ(server.active_leases(VnId{1}), 1u);
}

TEST_F(DhcpFixture, LeasesAreStickyPerMac) {
  const auto first = server.acquire(VnId{1}, mac(1));
  const auto second = server.acquire(VnId{1}, mac(1));
  EXPECT_EQ(first, second);
  EXPECT_EQ(server.active_leases(VnId{1}), 1u);
}

TEST_F(DhcpFixture, DistinctMacsGetDistinctAddresses) {
  std::unordered_set<std::uint32_t> seen;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto ip = server.acquire(VnId{1}, mac(i));
    ASSERT_TRUE(ip.has_value());
    EXPECT_TRUE(seen.insert(ip->value()).second) << ip->to_string();
  }
}

TEST_F(DhcpFixture, UnknownVnRefused) {
  EXPECT_FALSE(server.acquire(VnId{9}, mac(1)).has_value());
}

TEST_F(DhcpFixture, ReleaseRecyclesAddress) {
  const auto ip = server.acquire(VnId{1}, mac(1));
  EXPECT_TRUE(server.release(VnId{1}, mac(1)));
  EXPECT_FALSE(server.release(VnId{1}, mac(1)));
  EXPECT_EQ(server.active_leases(VnId{1}), 0u);
  const auto reused = server.acquire(VnId{1}, mac(2));
  EXPECT_EQ(ip, reused);
}

TEST_F(DhcpFixture, PoolExhaustion) {
  server.add_pool(VnId{2}, *Ipv4Prefix::parse("10.2.0.0/29"), 1);  // 6 hosts - 1 reserved = 5
  EXPECT_EQ(server.pool_capacity(VnId{2}), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(server.acquire(VnId{2}, mac(100 + i)).has_value()) << i;
  }
  EXPECT_FALSE(server.acquire(VnId{2}, mac(200)).has_value());
  // Releasing one frees a slot.
  EXPECT_TRUE(server.release(VnId{2}, mac(100)));
  EXPECT_TRUE(server.acquire(VnId{2}, mac(200)).has_value());
}

TEST_F(DhcpFixture, ReservedSlotsSkipped) {
  server.add_pool(VnId{3}, *Ipv4Prefix::parse("10.3.0.0/24"), 10);
  const auto ip = server.acquire(VnId{3}, mac(1));
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "10.3.0.11");
}

TEST_F(DhcpFixture, LeaseOfQueriesWithoutAllocating) {
  EXPECT_FALSE(server.lease_of(VnId{1}, mac(1)).has_value());
  const auto ip = server.acquire(VnId{1}, mac(1));
  EXPECT_EQ(server.lease_of(VnId{1}, mac(1)), ip);
  EXPECT_EQ(server.active_leases(VnId{1}), 1u);
}

TEST_F(DhcpFixture, LargePoolCapacity) {
  server.add_pool(VnId{4}, *Ipv4Prefix::parse("10.64.0.0/14"), 2);
  EXPECT_GT(server.pool_capacity(VnId{4}), 200000u);
  // 16k robots fit comfortably (warehouse scenario).
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(server.acquire(VnId{4}, mac(5000 + i)).has_value());
  }
}

}  // namespace
}  // namespace sda::l2
