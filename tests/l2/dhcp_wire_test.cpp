#include "l2/dhcp_wire.hpp"

#include <gtest/gtest.h>

#include "l2/dhcp.hpp"

namespace sda::l2 {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;
using net::MacAddress;
using net::VnId;

TEST(DhcpWire, MessageRoundTripAllOps) {
  for (const auto op : {DhcpOp::Discover, DhcpOp::Offer, DhcpOp::Request, DhcpOp::Ack,
                        DhcpOp::Nak, DhcpOp::Release}) {
    DhcpMessage m;
    m.op = op;
    m.transaction_id = 0xDEAD0001;
    m.client_mac = MacAddress::from_u64(0x02AB);
    m.your_ip = *Ipv4Address::parse("10.1.0.5");
    m.requested_ip = *Ipv4Address::parse("10.1.0.5");
    m.lease_seconds = 86400;
    net::ByteWriter w;
    m.encode(w);
    net::ByteReader r{w.data()};
    EXPECT_EQ(DhcpMessage::decode(r), m);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(DhcpWire, DecodeRejectsBadOpAndTruncation) {
  DhcpMessage m;
  net::ByteWriter w;
  m.encode(w);
  auto bytes = w.data();
  bytes[0] = 0;  // invalid op
  net::ByteReader r{bytes};
  EXPECT_FALSE(DhcpMessage::decode(r).has_value());
  bytes[0] = 9;
  net::ByteReader r2{bytes};
  EXPECT_FALSE(DhcpMessage::decode(r2).has_value());

  net::ByteWriter w2;
  m.encode(w2);
  const auto& full = w2.data();
  for (std::size_t len = 0; len < full.size(); ++len) {
    net::ByteReader rr{std::span<const std::uint8_t>{full.data(), len}};
    EXPECT_FALSE(DhcpMessage::decode(rr).has_value());
  }
}

TEST(DhcpWire, DoraExchangeAllocatesAndRoundTrips) {
  DhcpServer server;
  server.add_pool(VnId{1}, *Ipv4Prefix::parse("10.1.0.0/24"));
  const auto mac = MacAddress::from_u64(0x02CD);
  const auto result = run_dora(server, VnId{1}, mac, 42);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->offer.your_ip, result->address);
  EXPECT_EQ(result->request.requested_ip, result->address);
  EXPECT_EQ(result->ack.your_ip, result->address);
  EXPECT_EQ(result->discover.op, DhcpOp::Discover);
  EXPECT_EQ(result->ack.op, DhcpOp::Ack);
  for (const DhcpMessage* m :
       {&result->discover, &result->offer, &result->request, &result->ack}) {
    EXPECT_EQ(m->transaction_id, 42u);
    EXPECT_EQ(m->client_mac, mac);
  }
  EXPECT_EQ(server.lease_of(VnId{1}, mac), result->address);
}

TEST(DhcpWire, DoraIsStickyAcrossRuns) {
  DhcpServer server;
  server.add_pool(VnId{1}, *Ipv4Prefix::parse("10.1.0.0/24"));
  const auto mac = MacAddress::from_u64(0x02CD);
  const auto first = run_dora(server, VnId{1}, mac, 1);
  const auto second = run_dora(server, VnId{1}, mac, 2);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->address, second->address);
}

TEST(DhcpWire, DoraFailsOnExhaustedPool) {
  DhcpServer server;
  server.add_pool(VnId{1}, *Ipv4Prefix::parse("10.1.0.0/30"), 1);  // capacity 1
  EXPECT_TRUE(run_dora(server, VnId{1}, MacAddress::from_u64(1), 1).has_value());
  EXPECT_FALSE(run_dora(server, VnId{1}, MacAddress::from_u64(2), 2).has_value());
}

}  // namespace
}  // namespace sda::l2
