#include "l2/slaac.hpp"

#include <gtest/gtest.h>

namespace sda::l2 {
namespace {

TEST(Slaac, Eui64FlipsUniversalBitAndInsertsFffe) {
  // Classic RFC 4291 example: 00:11:22:33:44:55 -> 0211:22ff:fe33:4455.
  const auto iid = eui64_interface_id(*net::MacAddress::parse("00:11:22:33:44:55"));
  const std::array<std::uint8_t, 8> expected = {0x02, 0x11, 0x22, 0xFF, 0xFE, 0x33, 0x44, 0x55};
  EXPECT_EQ(iid, expected);
}

TEST(Slaac, LocallyAdministeredMacClearsBit) {
  const auto iid = eui64_interface_id(*net::MacAddress::parse("02:00:00:00:00:01"));
  EXPECT_EQ(iid[0], 0x00);  // U/L bit inverted back
}

TEST(Slaac, AddressCombinesPrefixAndIid) {
  const auto prefix = *net::Ipv6Prefix::parse("2001:db8:1:2::/64");
  const auto addr = slaac_address(prefix, *net::MacAddress::parse("00:11:22:33:44:55"));
  EXPECT_EQ(addr.to_string(), "2001:db8:1:2:211:22ff:fe33:4455");
  EXPECT_TRUE(prefix.contains(addr));
}

TEST(Slaac, DistinctMacsDistinctAddresses) {
  const auto prefix = *net::Ipv6Prefix::parse("fd00::/64");
  const auto a = slaac_address(prefix, net::MacAddress::from_u64(1));
  const auto b = slaac_address(prefix, net::MacAddress::from_u64(2));
  EXPECT_NE(a, b);
}

TEST(Slaac, DeterministicDerivation) {
  const auto prefix = *net::Ipv6Prefix::parse("fd00::/64");
  const auto mac = net::MacAddress::from_u64(0x02ABCDEF0123ull);
  EXPECT_EQ(slaac_address(prefix, mac), slaac_address(prefix, mac));
}

}  // namespace
}  // namespace sda::l2
