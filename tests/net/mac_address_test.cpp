#include "net/mac_address.hpp"

#include <gtest/gtest.h>

namespace sda::net {
namespace {

TEST(MacAddress, ParsesColonSeparated) {
  const auto m = MacAddress::parse("aa:bb:cc:dd:ee:ff");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to_u64(), 0xAABBCCDDEEFFull);
}

TEST(MacAddress, ParsesDashSeparatedAndUppercase) {
  EXPECT_EQ(MacAddress::parse("AA-BB-CC-00-11-22")->to_u64(), 0xAABBCC001122ull);
  EXPECT_EQ(MacAddress::parse("Aa:bB:cC:Dd:Ee:fF")->to_u64(), 0xAABBCCDDEEFFull);
}

struct BadMac : ::testing::TestWithParam<const char*> {};

TEST_P(BadMac, Rejected) { EXPECT_FALSE(MacAddress::parse(GetParam()).has_value()); }

INSTANTIATE_TEST_SUITE_P(MalformedInputs, BadMac,
                         ::testing::Values("", "aa:bb:cc:dd:ee", "aa:bb:cc:dd:ee:ff:00",
                                           "aabbccddeeff", "aa:bb:cc:dd:ee:fg",
                                           "aa bb cc dd ee ff", "aa:bb:cc:dd:ee:f"));

TEST(MacAddress, FormatsLowercaseColon) {
  EXPECT_EQ(MacAddress::from_u64(0xAABBCCDDEEFFull).to_string(), "aa:bb:cc:dd:ee:ff");
  EXPECT_EQ(MacAddress{}.to_string(), "00:00:00:00:00:00");
}

TEST(MacAddress, FromU64MasksTo48Bits) {
  EXPECT_EQ(MacAddress::from_u64(0xFFFF'AABBCCDDEEFFull).to_u64(), 0xAABBCCDDEEFFull);
}

TEST(MacAddress, BroadcastAndMulticastBits) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  EXPECT_TRUE(MacAddress::from_u64(0x0100'5E00'0001ull).is_multicast());
  EXPECT_TRUE(MacAddress::from_u64(0x0200'0000'0001ull).is_unicast());
  EXPECT_FALSE(MacAddress::from_u64(0x0200'0000'0001ull).is_broadcast());
}

TEST(MacAddress, RoundTripParseFormat) {
  const auto m = MacAddress::from_u64(0x02DEADBEEF42ull);
  EXPECT_EQ(MacAddress::parse(m.to_string()), m);
}

TEST(MacAddress, OrderingIsBytewise) {
  EXPECT_LT(MacAddress::from_u64(1), MacAddress::from_u64(2));
  EXPECT_LT(MacAddress::from_u64(0x00FFFFFFFFFFull), MacAddress::from_u64(0x010000000000ull));
}

}  // namespace
}  // namespace sda::net
