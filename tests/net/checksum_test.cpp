#include "net/checksum.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sda::net {
namespace {

TEST(Checksum, Rfc1071ReferenceVector) {
  // Classic example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2,
  // checksum = ~0xddf2 = 0x220d.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220D);
}

TEST(Checksum, EmptyInputIsAllOnesComplement) {
  EXPECT_EQ(internet_checksum({}), 0xFFFF);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> odd = {0xAB};
  // Sum = 0xAB00, checksum = ~0xAB00.
  EXPECT_EQ(internet_checksum(odd), static_cast<std::uint16_t>(~0xAB00));
}

TEST(Checksum, VerificationYieldsZero) {
  // A header with its checksum field filled in must re-checksum to 0.
  std::vector<std::uint8_t> header = {0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00,
                                      0x40, 0x06, 0x00, 0x00, 0xac, 0x10, 0x0a, 0x63,
                                      0xac, 0x10, 0x0a, 0x0c};
  const std::uint16_t sum = internet_checksum(header);
  header[10] = static_cast<std::uint8_t>(sum >> 8);
  header[11] = static_cast<std::uint8_t>(sum);
  EXPECT_EQ(internet_checksum(header), 0);
}

TEST(Checksum, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(40);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7);
  const std::uint16_t before = internet_checksum(data);
  data[13] ^= 0x20;
  EXPECT_NE(internet_checksum(data), before);
}

TEST(Checksum, FoldHandlesLargeCarries) {
  EXPECT_EQ(fold_checksum(0x0001FFFFu), static_cast<std::uint16_t>(~0x0001u));
  // 0xFFFF + 0xFFFF folds to 0x1FFFE -> 0xFFFF; complement is 0.
  EXPECT_EQ(fold_checksum(0xFFFFFFFFu), 0);
}

}  // namespace
}  // namespace sda::net
