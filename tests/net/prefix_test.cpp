#include "net/prefix.hpp"

#include <gtest/gtest.h>

namespace sda::net {
namespace {

TEST(Ipv4Prefix, ParsesCidr) {
  const auto p = Ipv4Prefix::parse("10.1.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 16);
  EXPECT_EQ(p->address().to_string(), "10.1.0.0");
}

TEST(Ipv4Prefix, BareAddressIsHostRoute) {
  const auto p = Ipv4Prefix::parse("10.1.2.3");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 32);
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  const Ipv4Prefix p{*Ipv4Address::parse("10.1.2.3"), 16};
  EXPECT_EQ(p.address().to_string(), "10.1.0.0");
  EXPECT_EQ(p, *Ipv4Prefix::parse("10.1.0.0/16"));
}

struct BadV4Prefix : ::testing::TestWithParam<const char*> {};
TEST_P(BadV4Prefix, Rejected) { EXPECT_FALSE(Ipv4Prefix::parse(GetParam()).has_value()); }
INSTANTIATE_TEST_SUITE_P(MalformedInputs, BadV4Prefix,
                         ::testing::Values("10.0.0.0/33", "10.0.0.0/", "10.0.0.0/-1",
                                           "10.0.0/8", "/8", "10.0.0.0/8/8", "10.0.0.0/ 8"));

TEST(Ipv4Prefix, ContainsAddresses) {
  const auto p = *Ipv4Prefix::parse("192.168.0.0/24");
  EXPECT_TRUE(p.contains(*Ipv4Address::parse("192.168.0.1")));
  EXPECT_TRUE(p.contains(*Ipv4Address::parse("192.168.0.255")));
  EXPECT_FALSE(p.contains(*Ipv4Address::parse("192.168.1.0")));
}

TEST(Ipv4Prefix, DefaultRouteContainsEverything) {
  const auto p = *Ipv4Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(p.contains(*Ipv4Address::parse("1.2.3.4")));
  EXPECT_TRUE(p.contains(*Ipv4Address::parse("255.255.255.255")));
}

TEST(Ipv4Prefix, ContainsSubPrefixes) {
  const auto p16 = *Ipv4Prefix::parse("10.1.0.0/16");
  EXPECT_TRUE(p16.contains(*Ipv4Prefix::parse("10.1.2.0/24")));
  EXPECT_TRUE(p16.contains(p16));
  EXPECT_FALSE(p16.contains(*Ipv4Prefix::parse("10.0.0.0/8")));  // shorter
  EXPECT_FALSE(p16.contains(*Ipv4Prefix::parse("10.2.0.0/24")));
}

TEST(Ipv4Prefix, HostEnumeration) {
  const auto p = *Ipv4Prefix::parse("10.0.0.0/24");
  EXPECT_EQ(p.host(1).to_string(), "10.0.0.1");
  EXPECT_EQ(p.host(200).to_string(), "10.0.0.200");
}

TEST(Ipv4Prefix, MaskValues) {
  EXPECT_EQ(Ipv4Prefix::mask(0), 0u);
  EXPECT_EQ(Ipv4Prefix::mask(8), 0xFF000000u);
  EXPECT_EQ(Ipv4Prefix::mask(32), 0xFFFFFFFFu);
}

TEST(Ipv4Prefix, ToStringRoundTrips) {
  for (const char* text : {"0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"}) {
    EXPECT_EQ(Ipv4Prefix::parse(text)->to_string(), text);
  }
}

TEST(Ipv6Prefix, ParsesAndCanonicalizes) {
  const auto p = Ipv6Prefix::parse("2001:db8:ffff::/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 32);
  EXPECT_EQ(p->address().to_string(), "2001:db8::");
}

TEST(Ipv6Prefix, ContainsAddresses) {
  const auto p = *Ipv6Prefix::parse("2001:db8::/32");
  EXPECT_TRUE(p.contains(*Ipv6Address::parse("2001:db8::1")));
  EXPECT_TRUE(p.contains(*Ipv6Address::parse("2001:db8:ffff::1")));
  EXPECT_FALSE(p.contains(*Ipv6Address::parse("2001:db9::1")));
}

TEST(Ipv6Prefix, NonByteAlignedLengths) {
  const auto p = *Ipv6Prefix::parse("fe80::/10");
  EXPECT_TRUE(p.contains(*Ipv6Address::parse("fe80::1")));
  EXPECT_TRUE(p.contains(*Ipv6Address::parse("febf::1")));
  EXPECT_FALSE(p.contains(*Ipv6Address::parse("fec0::1")));
}

TEST(Ipv6Prefix, ContainsSubPrefixes) {
  const auto p = *Ipv6Prefix::parse("2001:db8::/32");
  EXPECT_TRUE(p.contains(*Ipv6Prefix::parse("2001:db8:1::/48")));
  EXPECT_FALSE(p.contains(*Ipv6Prefix::parse("2001::/16")));
}

}  // namespace
}  // namespace sda::net
