#include "net/ip_address.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sda::net {
namespace {

TEST(Ipv4Address, ParsesDottedQuad) {
  const auto a = Ipv4Address::parse("192.168.1.42");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xC0A8012Au);
}

TEST(Ipv4Address, ParsesExtremes) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

struct BadV4 : ::testing::TestWithParam<const char*> {};

TEST_P(BadV4, Rejected) { EXPECT_FALSE(Ipv4Address::parse(GetParam()).has_value()); }

INSTANTIATE_TEST_SUITE_P(MalformedInputs, BadV4,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.256",
                                           "a.b.c.d", "1..2.3", "1.2.3.4 ", " 1.2.3.4",
                                           "1.2.3.-4", "01.2.3.4", "1.2.3.04", "1,2,3,4",
                                           "1.2.3.4/24"));

TEST(Ipv4Address, RoundTripsToString) {
  for (const char* text : {"0.0.0.0", "10.1.2.3", "172.16.254.1", "255.255.255.255"}) {
    const auto a = Ipv4Address::parse(text);
    ASSERT_TRUE(a.has_value()) << text;
    EXPECT_EQ(a->to_string(), text);
  }
}

TEST(Ipv4Address, BytesAreNetworkOrder) {
  const Ipv4Address a{10, 20, 30, 40};
  const auto b = a.bytes();
  EXPECT_EQ(b[0], 10);
  EXPECT_EQ(b[1], 20);
  EXPECT_EQ(b[2], 30);
  EXPECT_EQ(b[3], 40);
  EXPECT_EQ(Ipv4Address::from_bytes(b), a);
}

TEST(Ipv4Address, Classification) {
  EXPECT_TRUE(Ipv4Address{}.is_unspecified());
  EXPECT_TRUE(Ipv4Address::parse("127.0.0.1")->is_loopback());
  EXPECT_TRUE(Ipv4Address::parse("224.0.0.1")->is_multicast());
  EXPECT_TRUE(Ipv4Address::parse("239.255.255.255")->is_multicast());
  EXPECT_FALSE(Ipv4Address::parse("240.0.0.1")->is_multicast());
  EXPECT_TRUE(Ipv4Address::parse("255.255.255.255")->is_broadcast());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.1")->is_loopback());
}

TEST(Ipv4Address, OrderingMatchesNumericValue) {
  EXPECT_LT(*Ipv4Address::parse("9.255.255.255"), *Ipv4Address::parse("10.0.0.0"));
  EXPECT_LT(*Ipv4Address::parse("10.0.0.1"), *Ipv4Address::parse("10.0.1.0"));
}

TEST(Ipv4Address, HashDistinguishesSequentialAddresses) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<Ipv4Address>{}(Ipv4Address{0x0A000000u + i}));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(Ipv6Address, ParsesFullForm) {
  const auto a = Ipv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(1), 0x0db8);
  EXPECT_EQ(a->group(7), 0x0001);
}

TEST(Ipv6Address, ParsesCompressedForms) {
  EXPECT_TRUE(Ipv6Address::parse("::")->is_unspecified());
  EXPECT_EQ(Ipv6Address::parse("::1")->group(7), 1);
  EXPECT_EQ(Ipv6Address::parse("fe80::1")->group(0), 0xfe80);
  const auto mid = Ipv6Address::parse("2001:db8::8:800:200c:417a");
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->group(2), 0);
  EXPECT_EQ(mid->group(4), 0x8);
}

struct BadV6 : ::testing::TestWithParam<const char*> {};

TEST_P(BadV6, Rejected) { EXPECT_FALSE(Ipv6Address::parse(GetParam()).has_value()); }

INSTANTIATE_TEST_SUITE_P(MalformedInputs, BadV6,
                         ::testing::Values("", ":", ":::", "1:2:3:4:5:6:7", "1:2:3:4:5:6:7:8:9",
                                           "2001::db8::1", "12345::", "g::1", "1:2:3:4:5:6:7:",
                                           "::1::"));

TEST(Ipv6Address, FormatsWithRfc5952Compression) {
  EXPECT_EQ(Ipv6Address::parse("2001:db8:0:0:0:0:0:1")->to_string(), "2001:db8::1");
  EXPECT_EQ(Ipv6Address::parse("::")->to_string(), "::");
  EXPECT_EQ(Ipv6Address::parse("::1")->to_string(), "::1");
  EXPECT_EQ(Ipv6Address::parse("fe80::")->to_string(), "fe80::");
  // Longest zero run wins; single zero group is not compressed.
  EXPECT_EQ(Ipv6Address::parse("2001:0:0:1:0:0:0:1")->to_string(), "2001:0:0:1::1");
}

TEST(Ipv6Address, ParseFormatsRoundTrip) {
  for (const char* text : {"2001:db8::1", "::", "fe80::aaaa:bbbb", "1:2:3:4:5:6:7:8"}) {
    const auto a = Ipv6Address::parse(text);
    ASSERT_TRUE(a.has_value()) << text;
    const auto reparsed = Ipv6Address::parse(a->to_string());
    ASSERT_TRUE(reparsed.has_value()) << a->to_string();
    EXPECT_EQ(*a, *reparsed);
  }
}

TEST(Ipv6Address, Classification) {
  EXPECT_TRUE(Ipv6Address::parse("ff02::1")->is_multicast());
  EXPECT_TRUE(Ipv6Address::parse("fe80::1")->is_link_local());
  EXPECT_FALSE(Ipv6Address::parse("2001:db8::1")->is_link_local());
}

TEST(Ipv6Address, GroupsRoundTripThroughBytes) {
  const auto a = Ipv6Address::from_groups({1, 2, 3, 4, 5, 6, 7, 8});
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(a.group(i), i + 1);
  EXPECT_EQ(Ipv6Address{a.bytes()}, a);
}

}  // namespace
}  // namespace sda::net
