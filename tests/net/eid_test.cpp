#include "net/eid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace sda::net {
namespace {

TEST(Eid, FamiliesAndAccessors) {
  const Eid v4{Ipv4Address{10, 0, 0, 1}};
  const Eid v6{*Ipv6Address::parse("2001:db8::1")};
  const Eid mac{MacAddress::from_u64(0x02AB)};
  EXPECT_TRUE(v4.is_ipv4());
  EXPECT_TRUE(v6.is_ipv6());
  EXPECT_TRUE(mac.is_mac());
  EXPECT_EQ(v4.bit_width(), 32);
  EXPECT_EQ(v6.bit_width(), 128);
  EXPECT_EQ(mac.bit_width(), 48);
}

TEST(Eid, ToStringMatchesUnderlyingType) {
  EXPECT_EQ((Eid{Ipv4Address{10, 0, 0, 1}}.to_string()), "10.0.0.1");
  EXPECT_EQ(Eid{MacAddress::from_u64(0xAABBCCDDEEFFull)}.to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(Eid, WireRoundTripAllFamilies) {
  for (const Eid& eid : {Eid{Ipv4Address{1, 2, 3, 4}}, Eid{*Ipv6Address::parse("fe80::9")},
                         Eid{MacAddress::from_u64(0x020011223344ull)}}) {
    ByteWriter w;
    eid.encode(w);
    ByteReader r{w.data()};
    const auto decoded = Eid::decode(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, eid);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Eid, DecodeRejectsBadFamilyAndTruncation) {
  ByteWriter w;
  w.write_u8(99);  // unknown family
  w.write_u32(0);
  ByteReader r{w.data()};
  EXPECT_FALSE(Eid::decode(r).has_value());

  ByteWriter w2;
  w2.write_u8(2);  // IPv6 but only 3 bytes follow
  w2.write_u24(0);
  ByteReader r2{w2.data()};
  EXPECT_FALSE(Eid::decode(r2).has_value());
}

TEST(Eid, CrossFamilyOrderingIsStable) {
  const Eid v4{Ipv4Address{1, 1, 1, 1}};
  const Eid v6{*Ipv6Address::parse("::1")};
  // variant index order: v4 < v6 < mac.
  EXPECT_LT(v4, v6);
}

TEST(Eid, HashSeparatesFamilies) {
  // Same leading bytes, different family, must hash differently almost
  // always; at minimum they must not compare equal.
  const Eid v4{Ipv4Address{0, 0, 0, 1}};
  const Eid mac{MacAddress::from_u64(1)};
  EXPECT_NE(v4, mac);
  std::unordered_set<Eid> set{v4, mac};
  EXPECT_EQ(set.size(), 2u);
}

TEST(VnEid, HashDistributionOverDenseKeys) {
  // The workload's keys are the worst case for a weak hash: sequential IPv4
  // EIDs inside a handful of VNs (exactly what subnets produce). The old
  // `hash(vn) ^ (hash(eid) << 1)` combiner collapsed these onto a few
  // buckets; the mixed combiner must spread them like random keys.
  constexpr std::size_t kVns = 4;
  constexpr std::size_t kHosts = 4096;
  constexpr std::size_t kBuckets = 1024;  // power of two, like the flat tables
  std::vector<std::size_t> bucket_load(kBuckets, 0);
  std::unordered_set<std::size_t> distinct;
  for (std::uint32_t vn = 1; vn <= kVns; ++vn) {
    for (std::uint32_t host = 0; host < kHosts; ++host) {
      const VnEid key{VnId{vn}, Eid{Ipv4Address{0x0A000000u + host}}};
      const std::size_t h = std::hash<VnEid>{}(key);
      distinct.insert(h);
      ++bucket_load[h & (kBuckets - 1)];
    }
  }
  const std::size_t total = kVns * kHosts;
  // No full-hash collisions across 16k structured keys (a weak combiner
  // produced thousands here).
  EXPECT_EQ(distinct.size(), total);
  // Bucket loads stay near the mean: for 16k balls in 1k bins (mean 16),
  // a healthy hash keeps every bin under ~3x the mean.
  const std::size_t mean = total / kBuckets;
  std::size_t worst = 0;
  for (const std::size_t load : bucket_load) worst = std::max(worst, load);
  EXPECT_LE(worst, mean * 3) << "hash clumps structured keys into few buckets";
}

TEST(Eid, HashDistributionAcrossFamilies) {
  // MAC and IPv6 EIDs derived from the same counter must not collide with
  // the IPv4 EIDs of that counter (shared low bytes are the common case:
  // SLAAC addresses and locally administered MACs both embed small ints).
  std::unordered_set<std::size_t> distinct;
  constexpr std::size_t kPerFamily = 2048;
  for (std::uint32_t i = 0; i < kPerFamily; ++i) {
    distinct.insert(std::hash<Eid>{}(Eid{Ipv4Address{i}}));
    distinct.insert(std::hash<Eid>{}(Eid{MacAddress::from_u64(i)}));
  }
  EXPECT_EQ(distinct.size(), 2 * kPerFamily);
}

TEST(Rloc, WireRoundTrip) {
  const Rloc rloc{Ipv4Address{10, 0, 0, 3}, 2, 50};
  ByteWriter w;
  rloc.encode(w);
  ByteReader r{w.data()};
  EXPECT_EQ(Rloc::decode(r), rloc);
}

TEST(VnEid, WireRoundTrip) {
  const VnEid ve{VnId{0xABCDEF}, Eid{Ipv4Address{10, 9, 8, 7}}};
  ByteWriter w;
  ve.encode(w);
  ByteReader r{w.data()};
  EXPECT_EQ(VnEid::decode(r), ve);
}

TEST(VnEid, SameEidDifferentVnAreDistinct) {
  const Eid eid{Ipv4Address{10, 0, 0, 1}};
  const VnEid a{VnId{1}, eid};
  const VnEid b{VnId{2}, eid};
  EXPECT_NE(a, b);
  std::unordered_set<VnEid> set{a, b};
  EXPECT_EQ(set.size(), 2u);
}

TEST(VnId, MaskedTo24Bits) {
  EXPECT_EQ(VnId{0xFF123456u}.value(), 0x123456u);
}

TEST(GroupId, UnknownSemantics) {
  EXPECT_TRUE(GroupId::unknown().is_unknown());
  EXPECT_FALSE(GroupId{7}.is_unknown());
}

}  // namespace
}  // namespace sda::net
