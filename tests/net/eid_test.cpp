#include "net/eid.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sda::net {
namespace {

TEST(Eid, FamiliesAndAccessors) {
  const Eid v4{Ipv4Address{10, 0, 0, 1}};
  const Eid v6{*Ipv6Address::parse("2001:db8::1")};
  const Eid mac{MacAddress::from_u64(0x02AB)};
  EXPECT_TRUE(v4.is_ipv4());
  EXPECT_TRUE(v6.is_ipv6());
  EXPECT_TRUE(mac.is_mac());
  EXPECT_EQ(v4.bit_width(), 32);
  EXPECT_EQ(v6.bit_width(), 128);
  EXPECT_EQ(mac.bit_width(), 48);
}

TEST(Eid, ToStringMatchesUnderlyingType) {
  EXPECT_EQ((Eid{Ipv4Address{10, 0, 0, 1}}.to_string()), "10.0.0.1");
  EXPECT_EQ(Eid{MacAddress::from_u64(0xAABBCCDDEEFFull)}.to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(Eid, WireRoundTripAllFamilies) {
  for (const Eid& eid : {Eid{Ipv4Address{1, 2, 3, 4}}, Eid{*Ipv6Address::parse("fe80::9")},
                         Eid{MacAddress::from_u64(0x020011223344ull)}}) {
    ByteWriter w;
    eid.encode(w);
    ByteReader r{w.data()};
    const auto decoded = Eid::decode(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, eid);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Eid, DecodeRejectsBadFamilyAndTruncation) {
  ByteWriter w;
  w.write_u8(99);  // unknown family
  w.write_u32(0);
  ByteReader r{w.data()};
  EXPECT_FALSE(Eid::decode(r).has_value());

  ByteWriter w2;
  w2.write_u8(2);  // IPv6 but only 3 bytes follow
  w2.write_u24(0);
  ByteReader r2{w2.data()};
  EXPECT_FALSE(Eid::decode(r2).has_value());
}

TEST(Eid, CrossFamilyOrderingIsStable) {
  const Eid v4{Ipv4Address{1, 1, 1, 1}};
  const Eid v6{*Ipv6Address::parse("::1")};
  // variant index order: v4 < v6 < mac.
  EXPECT_LT(v4, v6);
}

TEST(Eid, HashSeparatesFamilies) {
  // Same leading bytes, different family, must hash differently almost
  // always; at minimum they must not compare equal.
  const Eid v4{Ipv4Address{0, 0, 0, 1}};
  const Eid mac{MacAddress::from_u64(1)};
  EXPECT_NE(v4, mac);
  std::unordered_set<Eid> set{v4, mac};
  EXPECT_EQ(set.size(), 2u);
}

TEST(Rloc, WireRoundTrip) {
  const Rloc rloc{Ipv4Address{10, 0, 0, 3}, 2, 50};
  ByteWriter w;
  rloc.encode(w);
  ByteReader r{w.data()};
  EXPECT_EQ(Rloc::decode(r), rloc);
}

TEST(VnEid, WireRoundTrip) {
  const VnEid ve{VnId{0xABCDEF}, Eid{Ipv4Address{10, 9, 8, 7}}};
  ByteWriter w;
  ve.encode(w);
  ByteReader r{w.data()};
  EXPECT_EQ(VnEid::decode(r), ve);
}

TEST(VnEid, SameEidDifferentVnAreDistinct) {
  const Eid eid{Ipv4Address{10, 0, 0, 1}};
  const VnEid a{VnId{1}, eid};
  const VnEid b{VnId{2}, eid};
  EXPECT_NE(a, b);
  std::unordered_set<VnEid> set{a, b};
  EXPECT_EQ(set.size(), 2u);
}

TEST(VnId, MaskedTo24Bits) {
  EXPECT_EQ(VnId{0xFF123456u}.value(), 0x123456u);
}

TEST(GroupId, UnknownSemantics) {
  EXPECT_TRUE(GroupId::unknown().is_unknown());
  EXPECT_FALSE(GroupId{7}.is_unknown());
}

}  // namespace
}  // namespace sda::net
