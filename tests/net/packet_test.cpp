#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace sda::net {
namespace {

OverlayFrame udp_frame(std::uint16_t payload, std::optional<std::uint16_t> vlan = {}) {
  OverlayFrame frame;
  frame.source_mac = MacAddress::from_u64(0x020000000001ull);
  frame.destination_mac = MacAddress::from_u64(0x020000000002ull);
  frame.vlan_id = vlan;
  Ipv4Datagram dgram;
  dgram.source = Ipv4Address{10, 1, 0, 5};
  dgram.destination = Ipv4Address{10, 1, 0, 9};
  dgram.protocol = IpProtocol::Udp;
  dgram.source_port = 40001;
  dgram.destination_port = 443;
  dgram.payload_size = payload;
  frame.l3 = dgram;
  return frame;
}

TEST(OverlayFrame, UdpWireRoundTrip) {
  const OverlayFrame frame = udp_frame(100);
  const auto bytes = frame.encode();
  EXPECT_EQ(bytes.size(), frame.wire_size());
  const auto decoded = OverlayFrame::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
}

TEST(OverlayFrame, VlanTaggedRoundTrip) {
  const OverlayFrame frame = udp_frame(64, 120);
  const auto decoded = OverlayFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->vlan_id, 120);
  EXPECT_EQ(*decoded, frame);
}

OverlayFrame udp6_frame(std::uint16_t payload) {
  OverlayFrame frame;
  frame.source_mac = MacAddress::from_u64(0x020000000001ull);
  frame.destination_mac = MacAddress::from_u64(0x020000000002ull);
  Ipv6Datagram dgram;
  dgram.source = *Ipv6Address::parse("2001:db8::5");
  dgram.destination = *Ipv6Address::parse("2001:db8::9");
  dgram.protocol = IpProtocol::Udp;
  dgram.source_port = 40001;
  dgram.destination_port = 443;
  dgram.payload_size = payload;
  dgram.hop_limit = 61;
  frame.l3 = dgram;
  return frame;
}

TEST(OverlayFrame, Ipv6WireRoundTrip) {
  const OverlayFrame frame = udp6_frame(200);
  const auto bytes = frame.encode();
  EXPECT_EQ(bytes.size(), frame.wire_size());
  const auto decoded = OverlayFrame::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
  EXPECT_TRUE(decoded->is_ipv6());
}

TEST(OverlayFrame, Ipv6WireSize) {
  EXPECT_EQ(udp6_frame(100).wire_size(), 14u + 40 + 8 + 100);
}

TEST(OverlayFrame, DestinationEidDispatchesByFamily) {
  EXPECT_TRUE(udp_frame(1).destination_eid().is_ipv4());
  EXPECT_TRUE(udp6_frame(1).destination_eid().is_ipv6());
  EXPECT_EQ(udp6_frame(1).destination_eid().ipv6(), *Ipv6Address::parse("2001:db8::9"));
  EXPECT_EQ(udp6_frame(1).source_eid().ipv6(), *Ipv6Address::parse("2001:db8::5"));
}

TEST(OverlayFrame, HopLimitAccessorsCrossFamily) {
  OverlayFrame v4 = udp_frame(1);
  OverlayFrame v6 = udp6_frame(1);
  EXPECT_EQ(v4.hop_limit(), 64);
  EXPECT_EQ(v6.hop_limit(), 61);
  v4.set_hop_limit(5);
  v6.set_hop_limit(6);
  EXPECT_EQ(v4.ip().ttl, 5);
  EXPECT_EQ(v6.ip6().hop_limit, 6);
}

TEST(FabricFrame, Ipv6InnerRoundTrip) {
  FabricFrame frame;
  frame.outer_source = Ipv4Address{10, 0, 0, 1};
  frame.outer_destination = Ipv4Address{10, 0, 0, 7};
  frame.vn = VnId{0x99};
  frame.source_group = GroupId{7};
  frame.inner = udp6_frame(128);
  const auto decoded = FabricFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
}

TEST(OverlayFrame, ArpRoundTrip) {
  OverlayFrame frame;
  frame.source_mac = MacAddress::from_u64(0x020000000001ull);
  frame.destination_mac = MacAddress::broadcast();
  ArpPacket arp;
  arp.op = ArpPacket::Op::Request;
  arp.sender_mac = frame.source_mac;
  arp.sender_ip = Ipv4Address{10, 1, 0, 5};
  arp.target_ip = Ipv4Address{10, 1, 0, 9};
  frame.l3 = arp;
  const auto decoded = OverlayFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
  EXPECT_TRUE(decoded->is_arp());
}

TEST(OverlayFrame, WireSizeAccountsForEverything) {
  EXPECT_EQ(udp_frame(0).wire_size(), 14u + 20 + 8);
  EXPECT_EQ(udp_frame(100).wire_size(), 14u + 20 + 8 + 100);
  EXPECT_EQ(udp_frame(100, 5).wire_size(), 14u + 4 + 20 + 8 + 100);
}

TEST(OverlayFrame, DecodeRejectsGarbage) {
  std::vector<std::uint8_t> garbage(10, 0xEE);
  EXPECT_FALSE(OverlayFrame::decode(garbage).has_value());
}

TEST(OverlayFrame, DecodeRejectsUnknownEtherType) {
  OverlayFrame frame = udp_frame(10);
  auto bytes = frame.encode();
  bytes[12] = 0x88;  // mangle ethertype
  bytes[13] = 0x88;
  EXPECT_FALSE(OverlayFrame::decode(bytes).has_value());
}

TEST(FabricFrame, FullStackRoundTrip) {
  FabricFrame frame;
  frame.outer_source = Ipv4Address{10, 0, 0, 1};
  frame.outer_destination = Ipv4Address{10, 0, 0, 7};
  frame.vn = VnId{0x1234};
  frame.source_group = GroupId{77};
  frame.policy_applied = true;
  frame.inner = udp_frame(200);

  const auto bytes = frame.encode();
  EXPECT_EQ(bytes.size(), frame.wire_size());
  const auto decoded = FabricFrame::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
}

TEST(FabricFrame, EncapsulationOverheadIs36Bytes) {
  FabricFrame frame;
  frame.inner = udp_frame(100);
  EXPECT_EQ(frame.wire_size() - frame.inner.wire_size(), 20u + 8 + 8);
}

TEST(FabricFrame, OuterUdpUsesVxlanPort) {
  FabricFrame frame;
  frame.outer_source = Ipv4Address{10, 0, 0, 1};
  frame.outer_destination = Ipv4Address{10, 0, 0, 2};
  frame.vn = VnId{1};
  frame.inner = udp_frame(10);
  const auto bytes = frame.encode();
  // Outer IPv4 is 20 bytes; UDP dport at offset 22-23.
  EXPECT_EQ((bytes[22] << 8) | bytes[23], kVxlanUdpPort);
}

TEST(FabricFrame, DecodeRejectsNonVxlanPort) {
  FabricFrame frame;
  frame.outer_source = Ipv4Address{10, 0, 0, 1};
  frame.outer_destination = Ipv4Address{10, 0, 0, 2};
  frame.vn = VnId{1};
  frame.inner = udp_frame(10);
  auto bytes = frame.encode();
  bytes[23] ^= 0x01;  // flip low bit of dport
  EXPECT_FALSE(FabricFrame::decode(bytes).has_value());
}

TEST(FabricFrame, GroupZeroRoundTripsAsUnknown) {
  FabricFrame frame;
  frame.outer_source = Ipv4Address{10, 0, 0, 1};
  frame.outer_destination = Ipv4Address{10, 0, 0, 2};
  frame.vn = VnId{9};
  frame.source_group = GroupId::unknown();
  frame.inner = udp_frame(1);
  const auto decoded = FabricFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->source_group.is_unknown());
}

TEST(FabricFrame, ArpInnerRoundTrip) {
  FabricFrame frame;
  frame.outer_source = Ipv4Address{10, 0, 0, 1};
  frame.outer_destination = Ipv4Address{10, 0, 0, 2};
  frame.vn = VnId{9};
  OverlayFrame inner;
  inner.source_mac = MacAddress::from_u64(0x02AA);
  inner.destination_mac = MacAddress::from_u64(0x02BB);
  ArpPacket arp;
  arp.op = ArpPacket::Op::Reply;
  inner.l3 = arp;
  frame.inner = inner;
  const auto decoded = FabricFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->inner.is_arp());
}

}  // namespace
}  // namespace sda::net
