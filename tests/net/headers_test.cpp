#include "net/headers.hpp"

#include <gtest/gtest.h>

namespace sda::net {
namespace {

template <typename H>
H round_trip(const H& header) {
  ByteWriter w;
  header.encode(w);
  ByteReader r{w.data()};
  const auto decoded = H::decode(r);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_TRUE(r.exhausted());
  return decoded.value_or(H{});
}

TEST(EthernetHeader, RoundTrip) {
  EthernetHeader h;
  h.destination = MacAddress::from_u64(0x112233445566ull);
  h.source = MacAddress::from_u64(0xAABBCCDDEEFFull);
  h.ether_type = static_cast<std::uint16_t>(EtherType::Ipv4);
  EXPECT_EQ(round_trip(h), h);
}

TEST(EthernetHeader, WireSizeIs14) {
  ByteWriter w;
  EthernetHeader{}.encode(w);
  EXPECT_EQ(w.size(), EthernetHeader::kWireSize);
}

TEST(VlanTag, RoundTripAndFieldPacking) {
  VlanTag tag;
  tag.vlan_id = 0x0ABC;
  tag.pcp = 5;
  tag.ether_type = static_cast<std::uint16_t>(EtherType::Arp);
  const VlanTag decoded = round_trip(tag);
  EXPECT_EQ(decoded.vlan_id, 0x0ABC);
  EXPECT_EQ(decoded.pcp, 5);
}

TEST(Ipv4Header, RoundTripWithChecksum) {
  Ipv4Header h;
  h.dscp = 10;
  h.total_length = 1500;
  h.identification = 0x4242;
  h.ttl = 17;
  h.protocol = static_cast<std::uint8_t>(IpProtocol::Udp);
  h.source = Ipv4Address{10, 0, 0, 1};
  h.destination = Ipv4Address{10, 0, 0, 2};
  EXPECT_EQ(round_trip(h), h);
}

TEST(Ipv4Header, RejectsCorruptedChecksum) {
  Ipv4Header h;
  h.total_length = 100;
  h.source = Ipv4Address{1, 2, 3, 4};
  h.destination = Ipv4Address{5, 6, 7, 8};
  ByteWriter w;
  h.encode(w);
  auto bytes = w.data();
  bytes[8] ^= 0xFF;  // corrupt TTL
  ByteReader r{bytes};
  EXPECT_FALSE(Ipv4Header::decode(r).has_value());
}

TEST(Ipv4Header, RejectsWrongVersionOrOptions) {
  ByteWriter w;
  Ipv4Header{}.encode(w);
  auto bytes = w.data();
  bytes[0] = 0x46;  // IHL 6 (options) unsupported
  ByteReader r{bytes};
  EXPECT_FALSE(Ipv4Header::decode(r).has_value());
  bytes[0] = 0x65;  // version 6
  ByteReader r2{bytes};
  EXPECT_FALSE(Ipv4Header::decode(r2).has_value());
}

TEST(Ipv4Header, RejectsTruncated) {
  ByteWriter w;
  Ipv4Header{}.encode(w);
  auto bytes = w.data();
  bytes.resize(10);
  ByteReader r{bytes};
  EXPECT_FALSE(Ipv4Header::decode(r).has_value());
}

TEST(Ipv6Header, RoundTrip) {
  Ipv6Header h;
  h.traffic_class = 0x2E;
  h.flow_label = 0xABCDE;
  h.payload_length = 1400;
  h.next_header = static_cast<std::uint8_t>(IpProtocol::Udp);
  h.hop_limit = 33;
  h.source = *Ipv6Address::parse("2001:db8::1");
  h.destination = *Ipv6Address::parse("2001:db8::2");
  EXPECT_EQ(round_trip(h), h);
}

TEST(Ipv6Header, FlowLabelMaskedTo20Bits) {
  Ipv6Header h;
  h.flow_label = 0xFFFFFFFF;
  ByteWriter w;
  h.encode(w);
  ByteReader r{w.data()};
  const auto decoded = Ipv6Header::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->flow_label, 0xFFFFFu);
}

TEST(Ipv6Header, RejectsWrongVersion) {
  ByteWriter w;
  Ipv6Header{}.encode(w);
  auto bytes = w.data();
  bytes[0] = 0x45;  // version 4
  ByteReader r{bytes};
  EXPECT_FALSE(Ipv6Header::decode(r).has_value());
}

TEST(UdpHeader, RoundTrip) {
  UdpHeader h{40000, kVxlanUdpPort, 1466};
  EXPECT_EQ(round_trip(h), h);
}

TEST(VxlanGpoHeader, RoundTripWithGroup) {
  VxlanGpoHeader h;
  h.vni = 0xABCDEF;
  h.group_policy_id = 0x1234;
  h.group_policy_applied = true;
  h.dont_learn = true;
  EXPECT_EQ(round_trip(h), h);
}

TEST(VxlanGpoHeader, GroupZeroWithoutGBitDecodesAsUntagged) {
  VxlanGpoHeader h;
  h.vni = 42;
  h.group_policy_id = 0;
  const VxlanGpoHeader decoded = round_trip(h);
  EXPECT_EQ(decoded.group_policy_id, 0);
  EXPECT_EQ(decoded.vni, 42u);
}

TEST(VxlanGpoHeader, VniIsMaskedTo24Bits) {
  VxlanGpoHeader h;
  h.vni = 0xFF123456;
  ByteWriter w;
  h.encode(w);
  ByteReader r{w.data()};
  const auto decoded = VxlanGpoHeader::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->vni, 0x123456u);
}

TEST(VxlanGpoHeader, RejectsMissingIBit) {
  ByteWriter w;
  VxlanGpoHeader{}.encode(w);
  auto bytes = w.data();
  bytes[0] = 0x00;  // clear flags including I
  ByteReader r{bytes};
  EXPECT_FALSE(VxlanGpoHeader::decode(r).has_value());
}

TEST(ArpPacket, RequestRoundTrip) {
  ArpPacket p;
  p.op = ArpPacket::Op::Request;
  p.sender_mac = MacAddress::from_u64(0x020000000001ull);
  p.sender_ip = Ipv4Address{10, 0, 0, 1};
  p.target_mac = MacAddress{};
  p.target_ip = Ipv4Address{10, 0, 0, 2};
  EXPECT_EQ(round_trip(p), p);
}

TEST(ArpPacket, ReplyRoundTrip) {
  ArpPacket p;
  p.op = ArpPacket::Op::Reply;
  p.sender_mac = MacAddress::from_u64(0x020000000002ull);
  p.sender_ip = Ipv4Address{10, 0, 0, 2};
  p.target_mac = MacAddress::from_u64(0x020000000001ull);
  p.target_ip = Ipv4Address{10, 0, 0, 1};
  EXPECT_EQ(round_trip(p), p);
}

TEST(ArpPacket, RejectsNonEthernetIpv4) {
  ByteWriter w;
  ArpPacket{}.encode(w);
  auto bytes = w.data();
  bytes[1] = 2;  // hardware type != Ethernet
  ByteReader r{bytes};
  EXPECT_FALSE(ArpPacket::decode(r).has_value());
}

TEST(ArpPacket, RejectsUnknownOpcode) {
  ByteWriter w;
  ArpPacket{}.encode(w);
  auto bytes = w.data();
  bytes[7] = 9;
  ByteReader r{bytes};
  EXPECT_FALSE(ArpPacket::decode(r).has_value());
}

// Truncation sweep: every strict prefix of a valid header must fail decode
// cleanly (no partial successes).
template <typename H>
void expect_truncation_safe(const H& header) {
  ByteWriter w;
  header.encode(w);
  const auto& full = w.data();
  for (std::size_t len = 0; len < full.size(); ++len) {
    ByteReader r{std::span<const std::uint8_t>{full.data(), len}};
    EXPECT_FALSE(H::decode(r).has_value()) << "accepted truncated length " << len;
  }
}

TEST(HeaderTruncation, AllHeadersRejectEveryTruncation) {
  expect_truncation_safe(EthernetHeader{MacAddress::from_u64(1), MacAddress::from_u64(2), 0x800});
  expect_truncation_safe(VlanTag{100, 3, 0x800});
  Ipv4Header ip;
  ip.source = Ipv4Address{1, 1, 1, 1};
  expect_truncation_safe(ip);
  Ipv6Header ip6;
  ip6.source = *Ipv6Address::parse("2001:db8::1");
  expect_truncation_safe(ip6);
  expect_truncation_safe(UdpHeader{1, 2, 8});
  VxlanGpoHeader vx;
  vx.vni = 7;
  expect_truncation_safe(vx);
  expect_truncation_safe(ArpPacket{});
}

}  // namespace
}  // namespace sda::net
