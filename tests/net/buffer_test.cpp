#include "net/buffer.hpp"

#include <gtest/gtest.h>

namespace sda::net {
namespace {

TEST(ByteWriter, WritesBigEndianIntegers) {
  ByteWriter w;
  w.write_u8(0x01);
  w.write_u16(0x0203);
  w.write_u24(0x040506);
  w.write_u32(0x0708090A);
  w.write_u64(0x0B0C0D0E0F101112ull);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 1u + 2 + 3 + 4 + 8);
  const std::vector<std::uint8_t> expected = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                              0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C,
                                              0x0D, 0x0E, 0x0F, 0x10, 0x11, 0x12};
  EXPECT_EQ(d, expected);
}

TEST(ByteReader, ReadsBackWhatWriterWrote) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u16(0xCDEF);
  w.write_u24(0x123456);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFull);
  w.write_string("hello sda");

  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(), 0xCDEF);
  EXPECT_EQ(r.read_u24(), 0x123456u);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_string(), "hello sda");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteReader, RefusesToReadPastEnd) {
  const std::vector<std::uint8_t> three = {1, 2, 3};
  ByteReader r{three};
  EXPECT_FALSE(r.read_u32().has_value());
  // Failed reads of composite types may consume partial data; a fresh
  // reader still reads what exists.
  ByteReader r2{three};
  EXPECT_TRUE(r2.read_u16().has_value());
  EXPECT_FALSE(r2.read_u16().has_value());
  EXPECT_TRUE(r2.read_u8().has_value());
  EXPECT_FALSE(r2.read_u8().has_value());
}

TEST(ByteReader, EmptyInput) {
  ByteReader r{std::span<const std::uint8_t>{}};
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(r.read_u8().has_value());
  EXPECT_FALSE(r.read_string().has_value());
  EXPECT_FALSE(r.read_array<4>().has_value());
}

TEST(ByteReader, ReadBytesAndArrays) {
  ByteWriter w;
  w.write_array<4>({9, 8, 7, 6});
  w.write_u8(42);
  ByteReader r{w.data()};
  const auto arr = r.read_array<4>();
  ASSERT_TRUE(arr.has_value());
  EXPECT_EQ((*arr)[0], 9);
  EXPECT_EQ((*arr)[3], 6);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(ByteReader, StringWithTruncatedBody) {
  ByteWriter w;
  w.write_u16(10);  // claims 10 bytes
  w.write_u8('x');  // only 1 present
  ByteReader r{w.data()};
  EXPECT_FALSE(r.read_string().has_value());
}

TEST(ByteWriter, PatchU16BackfillsLength) {
  ByteWriter w;
  w.write_u16(0);  // placeholder
  w.write_u32(0x11223344);
  w.patch_u16(0, static_cast<std::uint16_t>(w.size()));
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u16(), 6);
}

TEST(ByteWriter, EmptyStringRoundTrip) {
  ByteWriter w;
  w.write_string("");
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_string(), "");
  EXPECT_TRUE(r.exhausted());
}

struct IntWidth : ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntWidth, U64RoundTrip) {
  ByteWriter w;
  w.write_u64(GetParam());
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u64(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, IntWidth,
                         ::testing::Values(0ull, 1ull, 0xFFull, 0x100ull, 0xFFFFull,
                                           0xFFFFFFFFull, 0x100000000ull,
                                           0xFFFFFFFFFFFFFFFFull));

}  // namespace
}  // namespace sda::net
