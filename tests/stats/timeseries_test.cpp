#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

namespace sda::stats {
namespace {

sim::SimTime at_hours(int h) { return sim::SimTime{std::chrono::hours{h}}; }

TEST(TimeSeries, MeanOfAll) {
  TimeSeries ts;
  ts.add(at_hours(0), 10);
  ts.add(at_hours(1), 20);
  ts.add(at_hours(2), 30);
  EXPECT_DOUBLE_EQ(ts.mean(), 20);
  EXPECT_DOUBLE_EQ(ts.max(), 30);
  EXPECT_EQ(ts.size(), 3u);
}

TEST(TimeSeries, EmptyMeansZero) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.mean(), 0);
  EXPECT_DOUBLE_EQ(ts.max(), 0);
}

TEST(TimeSeries, MeanWhereFilters) {
  TimeSeries ts;
  for (int h = 0; h < 24; ++h) ts.add(at_hours(h), h < 12 ? 100 : 200);
  const double morning = ts.mean_where([](sim::SimTime t) { return t.hours() < 12; });
  const double evening = ts.mean_where([](sim::SimTime t) { return t.hours() >= 12; });
  EXPECT_DOUBLE_EQ(morning, 100);
  EXPECT_DOUBLE_EQ(evening, 200);
}

TEST(TimeSeries, MeanWhereNoMatchIsZero) {
  TimeSeries ts;
  ts.add(at_hours(1), 5);
  EXPECT_DOUBLE_EQ(ts.mean_where([](sim::SimTime) { return false; }), 0);
}

TEST(TimeSeries, AverageAcrossSeries) {
  TimeSeries a, b;
  for (int h = 0; h < 3; ++h) {
    a.add(at_hours(h), 10 * h);
    b.add(at_hours(h), 20 * h);
  }
  const TimeSeries avg = TimeSeries::average({&a, &b});
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_DOUBLE_EQ(avg.points()[1].value, 15);
  EXPECT_DOUBLE_EQ(avg.points()[2].value, 30);
  EXPECT_EQ(avg.points()[2].time, at_hours(2));
}

TEST(TimeSeries, AverageOfNothingIsEmpty) {
  EXPECT_TRUE(TimeSeries::average({}).empty());
}

}  // namespace
}  // namespace sda::stats
