#include "stats/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sda::stats {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct CsvFixture : ::testing::Test {
  void SetUp() override {
    dir = ::testing::TempDir() + "sda_csv_test";
    std::system(("mkdir -p " + dir).c_str());
  }
  std::string dir;
};

TEST_F(CsvFixture, WritesHeaderAndRows) {
  ASSERT_TRUE(write_csv(dir, "basic", {"a", "b"}, {{"1", "2"}, {"3", "4"}}));
  EXPECT_EQ(read_file(dir + "/basic.csv"), "a,b\n1,2\n3,4\n");
}

TEST_F(CsvFixture, EscapesCommasAndQuotes) {
  ASSERT_TRUE(write_csv(dir, "escaped", {"name"}, {{"hello, \"world\""}}));
  EXPECT_EQ(read_file(dir + "/escaped.csv"), "name\n\"hello, \"\"world\"\"\"\n");
}

TEST_F(CsvFixture, SeriesCsv) {
  ASSERT_TRUE(write_series_csv(dir, "series", "x", "y", {{1.5, 2.25}, {3, 4}}));
  EXPECT_EQ(read_file(dir + "/series.csv"), "x,y\n1.5,2.25\n3,4\n");
}

TEST_F(CsvFixture, TimeSeriesCsv) {
  TimeSeries ts;
  ts.add(sim::SimTime{std::chrono::hours{2}}, 10);
  ts.add(sim::SimTime{std::chrono::hours{3}}, 20);
  ASSERT_TRUE(write_timeseries_csv(dir, "ts", "value", ts));
  EXPECT_EQ(read_file(dir + "/ts.csv"), "hours,value\n2,10\n3,20\n");
}

TEST_F(CsvFixture, FailsCleanlyOnBadDirectory) {
  EXPECT_FALSE(write_csv("/nonexistent-dir-xyz", "x", {"a"}, {}));
}

TEST(ResultsDir, ReflectsEnvironment) {
  ::unsetenv("SDA_RESULTS_DIR");
  EXPECT_FALSE(results_dir().has_value());
  ::setenv("SDA_RESULTS_DIR", "/tmp/results", 1);
  EXPECT_EQ(results_dir(), "/tmp/results");
  ::setenv("SDA_RESULTS_DIR", "", 1);
  EXPECT_FALSE(results_dir().has_value());
  ::unsetenv("SDA_RESULTS_DIR");
}

}  // namespace
}  // namespace sda::stats
