#include "stats/summary.hpp"

#include <gtest/gtest.h>

namespace sda::stats {
namespace {

TEST(Summary, BasicMoments) {
  Summary s{{1, 2, 3, 4, 5}};
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 5);
  EXPECT_DOUBLE_EQ(s.mean(), 3);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(42);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42);
  EXPECT_DOUBLE_EQ(s.stddev(), 0);
}

TEST(Summary, PercentilesInterpolate) {
  Summary s{{0, 10}};
  EXPECT_DOUBLE_EQ(s.percentile(50), 5);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.5);
  Summary t{{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(t.median(), 2.5);
}

TEST(Summary, PercentileBoundsClamped) {
  Summary s{{1, 2, 3}};
  EXPECT_DOUBLE_EQ(s.percentile(-5), 1);
  EXPECT_DOUBLE_EQ(s.percentile(200), 3);
}

TEST(Summary, AddInvalidatesSortCache) {
  Summary s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.percentile(100), 20);
  s.add(5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 5);
}

TEST(Summary, BoxStatsOrdering) {
  Summary s;
  for (int i = 1; i <= 1000; ++i) s.add(i);
  const BoxStats b = s.box_stats();
  EXPECT_LT(b.whisker_low, b.q1);
  EXPECT_LT(b.q1, b.median);
  EXPECT_LT(b.median, b.q3);
  EXPECT_LT(b.q3, b.whisker_high);
  EXPECT_NEAR(b.median, 500.5, 1.0);
  EXPECT_NEAR(b.whisker_low, 25.975, 1.0);   // p2.5 of 1..1000
  EXPECT_NEAR(b.whisker_high, 975.025, 1.0);  // p97.5
  EXPECT_EQ(b.count, 1000u);
}

TEST(Summary, BoxStatsEmptyIsZeroed) {
  const BoxStats b = Summary{}.box_stats();
  EXPECT_EQ(b.count, 0u);
  EXPECT_DOUBLE_EQ(b.median, 0);
}

TEST(BoxStats, RelativeToNormalizes) {
  Summary s{{2, 4, 6, 8}};
  const BoxStats rel = s.box_stats().relative_to(2.0);
  EXPECT_DOUBLE_EQ(rel.min, 1.0);
  EXPECT_DOUBLE_EQ(rel.max, 4.0);
  EXPECT_DOUBLE_EQ(rel.mean, 2.5);
}

TEST(Summary, MergeCombinesSamples) {
  Summary a{{1, 2}};
  Summary b{{3, 4}};
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.max(), 4);
}

TEST(BoxStats, ToStringIsHumanReadable) {
  Summary s{{1, 2, 3}};
  const std::string text = s.box_stats().to_string();
  EXPECT_NE(text.find("med"), std::string::npos);
  EXPECT_NE(text.find("n=3"), std::string::npos);
}

}  // namespace
}  // namespace sda::stats
