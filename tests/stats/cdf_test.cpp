#include "stats/cdf.hpp"

#include <gtest/gtest.h>

namespace sda::stats {
namespace {

TEST(Cdf, AtEvaluatesFractionBelow) {
  Cdf cdf{{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100), 1.0);
}

TEST(Cdf, QuantileInverts) {
  Cdf cdf{{10, 20, 30, 40, 50}};
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50);
}

TEST(Cdf, QuantileAtIsConsistent) {
  Cdf cdf{{1, 5, 7, 9, 12, 20, 33}};
  for (double f : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_GE(cdf.at(cdf.quantile(f)), f);
  }
}

TEST(Cdf, SeriesSpansMinToMax) {
  Cdf cdf{{2, 4, 8, 16}};
  const auto series = cdf.series(5);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.front().first, 2);
  EXPECT_DOUBLE_EQ(series.back().first, 16);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
  // Monotone non-decreasing.
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
}

TEST(Cdf, NormalizedToBaseDividesSamples) {
  Cdf cdf{{2, 4, 6}};
  const Cdf norm = cdf.normalized_to(2.0);
  EXPECT_DOUBLE_EQ(norm.min(), 1.0);
  EXPECT_DOUBLE_EQ(norm.max(), 3.0);
  EXPECT_DOUBLE_EQ(norm.at(2.0), cdf.at(4.0));
}

TEST(Cdf, EmptyIsInert) {
  Cdf cdf{{}};
  EXPECT_EQ(cdf.count(), 0u);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_TRUE(cdf.series(3).empty());
}

TEST(Cdf, UnsortedInputHandled) {
  Cdf cdf{{9, 1, 5}};
  EXPECT_DOUBLE_EQ(cdf.min(), 1);
  EXPECT_DOUBLE_EQ(cdf.max(), 9);
  EXPECT_DOUBLE_EQ(cdf.at(5), 2.0 / 3.0);
}

}  // namespace
}  // namespace sda::stats
