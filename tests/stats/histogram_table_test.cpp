#include <gtest/gtest.h>

#include "stats/histogram.hpp"
#include "stats/table.hpp"

namespace sda::stats {
namespace {

TEST(Histogram, BucketsCountCorrectly) {
  Histogram h{0, 10, 10};
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.99);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[9], 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h{0, 10, 5};
  h.add(-1);
  h.add(10);   // hi is exclusive
  h.add(100);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h{0, 1, 1};
  h.add(0.5, 7);
  EXPECT_EQ(h.counts()[0], 7u);
}

TEST(Histogram, BucketEdges) {
  Histogram h{0, 100, 4};
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 50);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h{0, 2, 2};
  h.add(0.1, 4);
  h.add(1.5, 2);
  const std::string out = h.render(8);
  EXPECT_NE(out.find("########"), std::string::npos);
  EXPECT_NE(out.find("####"), std::string::npos);
}

TEST(Table, RendersAlignedColumns) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", Table::num(1.5, 1)});
  t.add_row({"b", Table::num(std::size_t{42})});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("-+-"), std::string::npos);
  // Every line has the same width.
  std::size_t first_len = out.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Table, ShortRowsPadded) {
  Table t{{"a", "b", "c"}};
  t.add_row({"only"});
  EXPECT_NO_THROW({ const auto s = t.render(); });
}

TEST(AsciiPlot, ProducesCanvasWithData) {
  std::vector<std::pair<double, double>> series;
  for (int i = 0; i <= 10; ++i) series.emplace_back(i, i * i);
  const std::string out = ascii_plot(series, 40, 10, "parabola");
  EXPECT_NE(out.find("parabola"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesSafe) {
  const std::string out = ascii_plot({}, 40, 10, "empty");
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(AsciiMultiplot, LegendListsSeries) {
  LabelledSeries a{"lisp", 'L', {{0, 0}, {1, 1}}};
  LabelledSeries b{"bgp", 'B', {{0, 1}, {1, 2}}};
  const std::string out = ascii_multiplot({a, b}, 30, 8, "handover");
  EXPECT_NE(out.find("L = lisp"), std::string::npos);
  EXPECT_NE(out.find("B = bgp"), std::string::npos);
  EXPECT_NE(out.find('L'), std::string::npos);
  EXPECT_NE(out.find('B'), std::string::npos);
}

}  // namespace
}  // namespace sda::stats
