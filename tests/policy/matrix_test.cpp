#include "policy/matrix.hpp"

#include <gtest/gtest.h>

namespace sda::policy {
namespace {

using net::GroupId;

TEST(ConnectivityMatrix, DefaultActionApplies) {
  ConnectivityMatrix allow{Action::Allow};
  EXPECT_EQ(allow.lookup(GroupId{1}, GroupId{2}), Action::Allow);
  ConnectivityMatrix deny{Action::Deny};
  EXPECT_EQ(deny.lookup(GroupId{1}, GroupId{2}), Action::Deny);
}

TEST(ConnectivityMatrix, ExplicitRuleOverridesDefault) {
  ConnectivityMatrix m{Action::Allow};
  EXPECT_TRUE(m.set_rule(GroupId{1}, GroupId{2}, Action::Deny));
  EXPECT_EQ(m.lookup(GroupId{1}, GroupId{2}), Action::Deny);
  EXPECT_EQ(m.lookup(GroupId{2}, GroupId{1}), Action::Allow);  // direction matters
}

TEST(ConnectivityMatrix, SetRuleIdempotenceAndVersion) {
  ConnectivityMatrix m;
  const auto v0 = m.version();
  EXPECT_TRUE(m.set_rule(GroupId{1}, GroupId{2}, Action::Deny));
  const auto v1 = m.version();
  EXPECT_GT(v1, v0);
  EXPECT_FALSE(m.set_rule(GroupId{1}, GroupId{2}, Action::Deny));  // no change
  EXPECT_EQ(m.version(), v1);
  EXPECT_TRUE(m.set_rule(GroupId{1}, GroupId{2}, Action::Allow));
  EXPECT_GT(m.version(), v1);
}

TEST(ConnectivityMatrix, ClearRuleRestoresDefault) {
  ConnectivityMatrix m{Action::Allow};
  m.set_rule(GroupId{1}, GroupId{2}, Action::Deny);
  EXPECT_TRUE(m.clear_rule(GroupId{1}, GroupId{2}));
  EXPECT_FALSE(m.clear_rule(GroupId{1}, GroupId{2}));
  EXPECT_EQ(m.lookup(GroupId{1}, GroupId{2}), Action::Allow);
}

TEST(ConnectivityMatrix, UnknownGroupAlwaysAllowed) {
  ConnectivityMatrix m{Action::Deny};
  EXPECT_EQ(m.lookup(GroupId::unknown(), GroupId{2}), Action::Allow);
  EXPECT_EQ(m.lookup(GroupId{2}, GroupId::unknown()), Action::Allow);
}

TEST(ConnectivityMatrix, RulesForDestination) {
  ConnectivityMatrix m;
  m.set_rule(GroupId{1}, GroupId{9}, Action::Deny);
  m.set_rule(GroupId{2}, GroupId{9}, Action::Allow);
  m.set_rule(GroupId{1}, GroupId{8}, Action::Deny);
  const auto rules = m.rules_for_destination(GroupId{9});
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].pair.source, GroupId{1});
  EXPECT_EQ(rules[1].pair.source, GroupId{2});
  for (const auto& rule : rules) EXPECT_EQ(rule.pair.destination, GroupId{9});
}

TEST(ConnectivityMatrix, RulesForSource) {
  ConnectivityMatrix m;
  m.set_rule(GroupId{1}, GroupId{9}, Action::Deny);
  m.set_rule(GroupId{1}, GroupId{8}, Action::Deny);
  m.set_rule(GroupId{2}, GroupId{9}, Action::Allow);
  EXPECT_EQ(m.rules_for_source(GroupId{1}).size(), 2u);
  EXPECT_EQ(m.rules_for_source(GroupId{3}).size(), 0u);
}

TEST(ConnectivityMatrix, WalkVisitsSortedRules) {
  ConnectivityMatrix m;
  m.set_rule(GroupId{2}, GroupId{1}, Action::Deny);
  m.set_rule(GroupId{1}, GroupId{1}, Action::Allow);
  std::vector<Rule> seen;
  m.walk([&](const Rule& r) { seen.push_back(r); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].pair.source, GroupId{1});
  EXPECT_EQ(seen[1].pair.source, GroupId{2});
  EXPECT_EQ(m.rule_count(), 2u);
}

}  // namespace
}  // namespace sda::policy
