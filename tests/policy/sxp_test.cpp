#include "policy/sxp.hpp"

#include <gtest/gtest.h>

namespace sda::policy {
namespace {

using net::GroupId;
using net::Ipv4Address;
using net::MacAddress;
using net::VnId;

TEST(Sxp, BindingUpdateRoundTrip) {
  SxpBindingUpdate update;
  update.sequence = 42;
  update.bindings = {
      {VnId{100}, *Ipv4Address::parse("10.1.0.5"), GroupId{10}, false},
      {VnId{100}, *Ipv4Address::parse("10.1.0.6"), GroupId{20}, true},
  };
  const auto decoded = decode_sxp(encode_sxp(SxpMessage{update}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<SxpBindingUpdate>(*decoded), update);
}

TEST(Sxp, EmptyBindingUpdateRoundTrip) {
  SxpBindingUpdate update;
  update.sequence = 1;
  const auto decoded = decode_sxp(encode_sxp(SxpMessage{update}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<SxpBindingUpdate>(*decoded).bindings.empty());
}

TEST(Sxp, RuleInstallRoundTrip) {
  SxpRuleInstall install;
  install.sequence = 7;
  install.vn = VnId{100};
  install.destination = GroupId{20};
  install.rules = {
      {{GroupId{10}, GroupId{20}}, Action::Deny},
      {{GroupId{11}, GroupId{20}}, Action::Allow},
  };
  const auto decoded = decode_sxp(encode_sxp(SxpMessage{install}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<SxpRuleInstall>(*decoded), install);
}

TEST(Sxp, GroupReassignRoundTrip) {
  const SxpGroupReassign reassign{9, VnId{100}, MacAddress::from_u64(0x02AB), GroupId{15}};
  const auto decoded = decode_sxp(encode_sxp(SxpMessage{reassign}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<SxpGroupReassign>(*decoded), reassign);
}

TEST(Sxp, RejectsUnknownTypeAndTruncation) {
  std::vector<std::uint8_t> bad = {9, 0, 0};
  EXPECT_FALSE(decode_sxp(bad).has_value());
  EXPECT_FALSE(decode_sxp({}).has_value());

  SxpRuleInstall install;
  install.vn = VnId{1};
  install.destination = GroupId{2};
  install.rules = {{{GroupId{1}, GroupId{2}}, Action::Deny}};
  const auto full = encode_sxp(SxpMessage{install});
  for (std::size_t len = 1; len < full.size(); ++len) {
    EXPECT_FALSE(decode_sxp({full.data(), len}).has_value()) << len;
  }
}

TEST(Sxp, RejectsInvalidAction) {
  SxpRuleInstall install;
  install.vn = VnId{1};
  install.destination = GroupId{2};
  install.rules = {{{GroupId{1}, GroupId{2}}, Action::Deny}};
  auto bytes = encode_sxp(SxpMessage{install});
  bytes.back() = 7;  // action byte out of range
  EXPECT_FALSE(decode_sxp(bytes).has_value());
}

}  // namespace
}  // namespace sda::policy
