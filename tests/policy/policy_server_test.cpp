#include "policy/policy_server.hpp"

#include <gtest/gtest.h>

namespace sda::policy {
namespace {

using net::GroupId;
using net::Ipv4Address;
using net::VnId;

AccessRequest request(const std::string& credential, const std::string& secret) {
  AccessRequest r;
  r.credential = credential;
  r.secret = secret;
  return r;
}

Ipv4Address edge(std::uint32_t i) { return Ipv4Address{0x0A000000u + i}; }

struct PolicyServerFixture : ::testing::Test {
  void SetUp() override {
    server.provision_endpoint("alice", "pw-a", {VnId{100}, GroupId{10}});
    server.provision_endpoint("camera-1", "pw-c", {VnId{100}, GroupId{20}});
    server.matrix(VnId{100}).set_rule(GroupId{10}, GroupId{20}, Action::Deny);
    server.matrix(VnId{100}).set_rule(GroupId{20}, GroupId{20}, Action::Allow);
  }
  PolicyServer server;
};

TEST_F(PolicyServerFixture, AuthenticateSuccess) {
  const auto policy = server.authenticate(request("alice", "pw-a"), edge(1));
  ASSERT_TRUE(policy.has_value());
  EXPECT_EQ(policy->vn, VnId{100});
  EXPECT_EQ(policy->group, GroupId{10});
  EXPECT_EQ(server.stats().auth_accepts, 1u);
}

TEST_F(PolicyServerFixture, AuthenticateRejectsWrongSecretOrUnknown) {
  EXPECT_FALSE(server.authenticate(request("alice", "wrong"), edge(1)).has_value());
  EXPECT_FALSE(server.authenticate(request("mallory", "x"), edge(1)).has_value());
  EXPECT_EQ(server.stats().auth_rejects, 2u);
}

TEST_F(PolicyServerFixture, DownloadRulesFiltersByDestination) {
  const auto rules = server.download_rules(VnId{100}, GroupId{20});
  ASSERT_EQ(rules.size(), 2u);
  for (const auto& rule : rules) EXPECT_EQ(rule.pair.destination, GroupId{20});
  EXPECT_TRUE(server.download_rules(VnId{100}, GroupId{99}).empty());
  EXPECT_TRUE(server.download_rules(VnId{999}, GroupId{20}).empty());
}

TEST_F(PolicyServerFixture, ReassignGroupSignalsOnce) {
  int signals = 0;
  EndpointPolicy seen{};
  server.set_endpoint_changed_callback([&](const std::string& cred, const EndpointPolicy& p) {
    ++signals;
    EXPECT_EQ(cred, "alice");
    seen = p;
  });
  EXPECT_TRUE(server.reassign_group("alice", GroupId{15}));
  EXPECT_FALSE(server.reassign_group("alice", GroupId{15}));  // no-op
  EXPECT_FALSE(server.reassign_group("nobody", GroupId{15}));
  EXPECT_EQ(signals, 1);
  EXPECT_EQ(seen.group, GroupId{15});
  EXPECT_EQ(server.stats().endpoint_change_signals, 1u);
}

TEST_F(PolicyServerFixture, RulePushGoesToHostingEdgesOnly) {
  // camera-1's group (20) is hosted on edges 1 and 2 after authentication.
  (void)server.authenticate(request("camera-1", "pw-c"), edge(1));
  (void)server.authenticate(request("camera-1", "pw-c"), edge(2));

  std::vector<Ipv4Address> pushed_to;
  server.set_rules_push_callback(
      [&](Ipv4Address rloc, VnId vn, const std::vector<Rule>& rules) {
        pushed_to.push_back(rloc);
        EXPECT_EQ(vn, VnId{100});
        EXPECT_FALSE(rules.empty());
      });
  server.update_rule(VnId{100}, GroupId{11}, GroupId{20}, Action::Deny);
  EXPECT_EQ(pushed_to.size(), 2u);
  EXPECT_EQ(server.stats().rule_push_messages, 2u);

  // A rule towards a group hosted nowhere generates no pushes.
  pushed_to.clear();
  server.update_rule(VnId{100}, GroupId{11}, GroupId{77}, Action::Deny);
  EXPECT_TRUE(pushed_to.empty());
}

TEST_F(PolicyServerFixture, NoopRuleUpdateDoesNotPush) {
  (void)server.authenticate(request("camera-1", "pw-c"), edge(1));
  int pushes = 0;
  server.set_rules_push_callback(
      [&](Ipv4Address, VnId, const std::vector<Rule>&) { ++pushes; });
  server.update_rule(VnId{100}, GroupId{10}, GroupId{20}, Action::Deny);  // already set
  EXPECT_EQ(pushes, 0);
}

TEST_F(PolicyServerFixture, ReleaseGroupStopsPushes) {
  (void)server.authenticate(request("camera-1", "pw-c"), edge(1));
  server.release_group(edge(1), VnId{100}, GroupId{20});
  int pushes = 0;
  server.set_rules_push_callback(
      [&](Ipv4Address, VnId, const std::vector<Rule>&) { ++pushes; });
  server.update_rule(VnId{100}, GroupId{12}, GroupId{20}, Action::Deny);
  EXPECT_EQ(pushes, 0);
}

TEST_F(PolicyServerFixture, DeprovisionRemovesEndpoint) {
  EXPECT_TRUE(server.deprovision_endpoint("alice"));
  EXPECT_FALSE(server.deprovision_endpoint("alice"));
  EXPECT_FALSE(server.authenticate(request("alice", "pw-a"), edge(1)).has_value());
  EXPECT_EQ(server.endpoint_count(), 1u);
}

TEST_F(PolicyServerFixture, ReprovisionChangesPolicy) {
  server.provision_endpoint("alice", "pw-a2", {VnId{200}, GroupId{30}});
  EXPECT_FALSE(server.authenticate(request("alice", "pw-a"), edge(1)).has_value());
  const auto policy = server.authenticate(request("alice", "pw-a2"), edge(1));
  ASSERT_TRUE(policy.has_value());
  EXPECT_EQ(policy->vn, VnId{200});
}

}  // namespace
}  // namespace sda::policy
