#include "policy/radius.hpp"

#include <gtest/gtest.h>

namespace sda::policy {
namespace {

TEST(Radius, AccessRequestRoundTrip) {
  AccessRequest req;
  req.request_id = 42;
  req.credential = "user@corp.example";
  req.secret = "hunter2";
  req.calling_mac = net::MacAddress::from_u64(0x02AB12);
  req.nas_port = 7;
  net::ByteWriter w;
  req.encode(w);
  net::ByteReader r{w.data()};
  EXPECT_EQ(AccessRequest::decode(r), req);
  EXPECT_TRUE(r.exhausted());
}

TEST(Radius, AccessAcceptRoundTrip) {
  AccessAccept acc;
  acc.request_id = 42;
  acc.vn = net::VnId{0x123456};
  acc.group = net::GroupId{77};
  net::ByteWriter w;
  acc.encode(w);
  net::ByteReader r{w.data()};
  EXPECT_EQ(AccessAccept::decode(r), acc);
}

TEST(Radius, AccessRejectRoundTrip) {
  AccessReject rej;
  rej.request_id = 9;
  rej.reason = "bad credentials";
  net::ByteWriter w;
  rej.encode(w);
  net::ByteReader r{w.data()};
  EXPECT_EQ(AccessReject::decode(r), rej);
}

TEST(Radius, DecodeRejectsWrongCode) {
  AccessAccept acc;
  net::ByteWriter w;
  acc.encode(w);
  net::ByteReader r{w.data()};
  EXPECT_FALSE(AccessRequest::decode(r).has_value());  // code mismatch
}

TEST(Radius, DecodeRejectsTruncation) {
  AccessRequest req;
  req.credential = "abc";
  req.secret = "s";
  net::ByteWriter w;
  req.encode(w);
  const auto& full = w.data();
  for (std::size_t len = 0; len < full.size(); ++len) {
    net::ByteReader r{std::span<const std::uint8_t>{full.data(), len}};
    EXPECT_FALSE(AccessRequest::decode(r).has_value());
  }
}

TEST(Radius, EmptyCredentialAllowedOnWire) {
  AccessRequest req;  // MAB-style: empty strings, MAC identifies
  net::ByteWriter w;
  req.encode(w);
  net::ByteReader r{w.data()};
  EXPECT_EQ(AccessRequest::decode(r), req);
}

}  // namespace
}  // namespace sda::policy
