#include "lisp/map_server_node.hpp"

#include <gtest/gtest.h>

namespace sda::lisp {
namespace {

using net::Eid;
using net::Ipv4Address;
using net::Rloc;
using net::VnEid;
using net::VnId;

VnEid eid(const char* ip) { return VnEid{VnId{1}, Eid{*Ipv4Address::parse(ip)}}; }

struct NodeFixture : ::testing::Test {
  NodeFixture() : node(sim, server, config(), 42) {}

  static MapServerNodeConfig config() {
    MapServerNodeConfig c;
    c.rloc = *Ipv4Address::parse("10.0.0.1");
    c.workers = 2;
    c.request_service = std::chrono::microseconds{25};
    c.register_service = std::chrono::microseconds{30};
    c.jitter_sigma = 0.0;  // deterministic service for assertions
    return c;
  }

  MapRegister make_register(const char* ip, const char* rloc_ip) {
    MapRegister r;
    r.nonce = nonce++;
    r.eid = eid(ip);
    r.rlocs = {Rloc{*Ipv4Address::parse(rloc_ip)}};
    r.ttl_seconds = 3600;
    return r;
  }

  sim::Simulator sim;
  MapServer server;
  MapServerNode node;
  std::uint64_t nonce = 1;
};

TEST_F(NodeFixture, RegisterThenRequestRoundTrip) {
  bool registered = false;
  node.submit_register(make_register("10.1.0.5", "10.0.0.2"),
                       [&](const RegisterOutcome& outcome, const MapNotify& notify,
                           sim::Duration) {
                         registered = true;
                         EXPECT_TRUE(outcome.created);
                         EXPECT_EQ(notify.eid, eid("10.1.0.5"));
                       });
  sim.run();
  ASSERT_TRUE(registered);

  bool replied = false;
  MapRequest request;
  request.nonce = 99;
  request.eid = eid("10.1.0.5");
  node.submit_request(request, [&](const MapReply& reply, sim::Duration sojourn) {
    replied = true;
    EXPECT_EQ(reply.nonce, 99u);
    EXPECT_FALSE(reply.negative());
    EXPECT_EQ(sojourn, std::chrono::microseconds{25});
  });
  sim.run();
  EXPECT_TRUE(replied);
}

TEST_F(NodeFixture, NegativeReplyForUnknown) {
  bool replied = false;
  MapRequest request;
  request.eid = eid("10.9.9.9");
  node.submit_request(request, [&](const MapReply& reply, sim::Duration) {
    replied = true;
    EXPECT_TRUE(reply.negative());
  });
  sim.run();
  EXPECT_TRUE(replied);
}

TEST_F(NodeFixture, QueueingDelaysExcessLoad) {
  // 2 workers, 25us service: 6 simultaneous requests -> sojourns of
  // 25, 25, 50, 50, 75, 75 us.
  std::vector<std::int64_t> sojourns_us;
  for (int i = 0; i < 6; ++i) {
    MapRequest request;
    request.eid = eid("10.9.9.9");
    node.submit_request(request, [&](const MapReply&, sim::Duration s) {
      sojourns_us.push_back(s.count() / 1000);
    });
  }
  sim.run();
  ASSERT_EQ(sojourns_us.size(), 6u);
  EXPECT_EQ(sojourns_us, (std::vector<std::int64_t>{25, 25, 50, 50, 75, 75}));
  EXPECT_EQ(node.peak_backlog(), 6u);
}

TEST_F(NodeFixture, SpacedLoadSeesNoQueueing) {
  std::vector<std::int64_t> sojourns_us;
  for (int i = 0; i < 4; ++i) {
    sim.schedule_at(sim::SimTime{std::chrono::milliseconds{i}}, [&] {
      MapRequest request;
      request.eid = eid("10.9.9.9");
      node.submit_request(request, [&](const MapReply&, sim::Duration s) {
        sojourns_us.push_back(s.count() / 1000);
      });
    });
  }
  sim.run();
  for (const auto s : sojourns_us) EXPECT_EQ(s, 25);
}

TEST_F(NodeFixture, ZeroTtlRegisterWithdraws) {
  node.submit_register(make_register("10.1.0.5", "10.0.0.2"), {});
  sim.run();
  EXPECT_EQ(server.mapping_count(), 1u);

  MapRegister withdraw = make_register("10.1.0.5", "10.0.0.2");
  withdraw.ttl_seconds = 0;
  node.submit_register(withdraw, {});
  sim.run();
  EXPECT_EQ(server.mapping_count(), 0u);
}

TEST_F(NodeFixture, MoveOutcomePropagates) {
  node.submit_register(make_register("10.1.0.5", "10.0.0.2"), {});
  sim.run();
  bool moved = false;
  node.submit_register(make_register("10.1.0.5", "10.0.0.3"),
                       [&](const RegisterOutcome& outcome, const MapNotify&, sim::Duration) {
                         moved = outcome.moved;
                         EXPECT_EQ(outcome.previous_rloc, *Ipv4Address::parse("10.0.0.2"));
                       });
  sim.run();
  EXPECT_TRUE(moved);
}

TEST_F(NodeFixture, SojournSamplesCollected) {
  for (int i = 0; i < 10; ++i) {
    MapRequest request;
    request.eid = eid("10.9.9.9");
    node.submit_request(request, {});
  }
  node.submit_register(make_register("10.1.0.5", "10.0.0.2"), {});
  sim.run();
  EXPECT_EQ(node.request_sojourns().count(), 10u);
  EXPECT_EQ(node.register_sojourns().count(), 1u);
}

TEST_F(NodeFixture, GroupCarriedIntoRecord) {
  MapRegister reg = make_register("10.1.0.5", "10.0.0.2");
  reg.group = 55;
  node.submit_register(reg, {});
  sim.run();
  EXPECT_EQ(server.resolve(eid("10.1.0.5"))->group, net::GroupId{55});
}

}  // namespace
}  // namespace sda::lisp
