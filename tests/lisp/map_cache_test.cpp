#include "lisp/map_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sda::lisp {
namespace {

using net::Eid;
using net::Ipv4Address;
using net::Rloc;
using net::VnEid;
using net::VnId;

VnEid eid(const char* ip) { return VnEid{VnId{1}, Eid{*Ipv4Address::parse(ip)}}; }

MapReply reply(const char* rloc_ip, std::uint32_t ttl = 3600) {
  MapReply r;
  r.rlocs = {Rloc{*Ipv4Address::parse(rloc_ip)}};
  r.ttl_seconds = ttl;
  return r;
}

MapReply negative_reply(std::uint32_t ttl = 60) {
  MapReply r;
  r.action = MapReplyAction::NativelyForward;
  r.ttl_seconds = ttl;
  return r;
}

sim::SimTime at_s(int s) { return sim::SimTime{std::chrono::seconds{s}}; }

TEST(MapCache, InstallAndLookup) {
  MapCache cache;
  cache.install(eid("10.1.0.5"), reply("10.0.0.2"), at_s(0));
  const auto* entry = cache.lookup(eid("10.1.0.5"), at_s(1));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->primary_rloc(), *Ipv4Address::parse("10.0.0.2"));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.positive_size(), 1u);
}

TEST(MapCache, MissCounts) {
  MapCache cache;
  EXPECT_EQ(cache.lookup(eid("10.1.0.5"), at_s(0)), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(MapCache, EntriesExpireByTtl) {
  MapCache cache;
  cache.install(eid("10.1.0.5"), reply("10.0.0.2", 100), at_s(0));
  EXPECT_NE(cache.lookup(eid("10.1.0.5"), at_s(99)), nullptr);
  EXPECT_EQ(cache.lookup(eid("10.1.0.5"), at_s(100)), nullptr);
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(MapCache, NegativeEntriesCachedButNotCountedPositive) {
  MapCache cache;
  cache.install(eid("10.1.0.5"), negative_reply(), at_s(0));
  const auto* entry = cache.lookup(eid("10.1.0.5"), at_s(1));
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->negative());
  EXPECT_EQ(cache.positive_size(), 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MapCache, PositiveReplacesNegative) {
  MapCache cache;
  cache.install(eid("10.1.0.5"), negative_reply(), at_s(0));
  cache.install(eid("10.1.0.5"), reply("10.0.0.2"), at_s(1));
  EXPECT_EQ(cache.positive_size(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.lookup(eid("10.1.0.5"), at_s(2))->negative());
}

TEST(MapCache, LruEvictionAtCapacity) {
  MapCache cache{3};
  cache.install(eid("10.1.0.1"), reply("10.0.0.2"), at_s(0));
  cache.install(eid("10.1.0.2"), reply("10.0.0.2"), at_s(0));
  cache.install(eid("10.1.0.3"), reply("10.0.0.2"), at_s(0));
  // Touch .1 so .2 becomes the LRU victim.
  EXPECT_NE(cache.lookup(eid("10.1.0.1"), at_s(1)), nullptr);
  cache.install(eid("10.1.0.4"), reply("10.0.0.2"), at_s(2));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup(eid("10.1.0.2"), at_s(3)), nullptr);
  EXPECT_NE(cache.lookup(eid("10.1.0.1"), at_s(3)), nullptr);
  EXPECT_NE(cache.lookup(eid("10.1.0.4"), at_s(3)), nullptr);
}

TEST(MapCache, InvalidateSingleEntry) {
  MapCache cache;
  cache.install(eid("10.1.0.5"), reply("10.0.0.2"), at_s(0));
  EXPECT_TRUE(cache.invalidate(eid("10.1.0.5")));
  EXPECT_FALSE(cache.invalidate(eid("10.1.0.5")));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(MapCache, InvalidateRlocPurgesOnlyThatRloc) {
  MapCache cache;
  cache.install(eid("10.1.0.1"), reply("10.0.0.2"), at_s(0));
  cache.install(eid("10.1.0.2"), reply("10.0.0.2"), at_s(0));
  cache.install(eid("10.1.0.3"), reply("10.0.0.9"), at_s(0));
  cache.install(eid("10.1.0.4"), negative_reply(), at_s(0));
  EXPECT_EQ(cache.invalidate_rloc(*Ipv4Address::parse("10.0.0.2")), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.lookup(eid("10.1.0.3"), at_s(1)), nullptr);
}

TEST(MapCache, InvalidateRlocIsIdempotentAndTracksPositiveSize) {
  MapCache cache;
  cache.install(eid("10.1.0.1"), reply("10.0.0.2"), at_s(0));
  cache.install(eid("10.1.0.2"), reply("10.0.0.2"), at_s(0));
  cache.install(eid("10.1.0.3"), negative_reply(), at_s(0));
  EXPECT_EQ(cache.positive_size(), 2u);
  EXPECT_EQ(cache.invalidate_rloc(*Ipv4Address::parse("10.0.0.2")), 2u);
  EXPECT_EQ(cache.positive_size(), 0u);
  EXPECT_EQ(cache.size(), 1u);  // the negative entry is not tied to any RLOC
  // A second purge finds nothing: entries must not linger half-removed.
  EXPECT_EQ(cache.invalidate_rloc(*Ipv4Address::parse("10.0.0.2")), 0u);
  EXPECT_EQ(cache.lookup(eid("10.1.0.1"), at_s(1)), nullptr);
  EXPECT_EQ(cache.lookup(eid("10.1.0.2"), at_s(1)), nullptr);
}

TEST(MapCache, InvalidateRlocSurvivesRepeatedFlapCycles) {
  // Models an RLOC flapping repeatedly: purge, re-learn, purge again. Every
  // cycle must behave identically — no stale entries reappear and counts
  // stay exact.
  MapCache cache;
  const auto rloc_addr = *Ipv4Address::parse("10.0.0.2");
  for (int cycle = 0; cycle < 5; ++cycle) {
    cache.install(eid("10.1.0.1"), reply("10.0.0.2"), at_s(cycle * 10));
    cache.install(eid("10.1.0.2"), reply("10.0.0.9"), at_s(cycle * 10));
    EXPECT_EQ(cache.invalidate_rloc(rloc_addr), 1u) << "cycle " << cycle;
    EXPECT_EQ(cache.lookup(eid("10.1.0.1"), at_s(cycle * 10 + 1)), nullptr);
    ASSERT_NE(cache.lookup(eid("10.1.0.2"), at_s(cycle * 10 + 1)), nullptr);
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.positive_size(), 1u);
}

TEST(MapCache, SweepRemovesExpired) {
  MapCache cache;
  cache.install(eid("10.1.0.1"), reply("10.0.0.2", 10), at_s(0));
  cache.install(eid("10.1.0.2"), reply("10.0.0.2", 1000), at_s(0));
  EXPECT_EQ(cache.sweep(at_s(100)), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MapCache, InstallFromNotifyUpdatesLocation) {
  MapCache cache;
  cache.install(eid("10.1.0.5"), reply("10.0.0.2"), at_s(0));
  cache.install(eid("10.1.0.5"), {Rloc{*Ipv4Address::parse("10.0.0.7")}}, 600, at_s(5));
  const auto* entry = cache.lookup(eid("10.1.0.5"), at_s(6));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->primary_rloc(), *Ipv4Address::parse("10.0.0.7"));
}

TEST(MapCache, ClearDropsEverything) {
  MapCache cache;
  cache.install(eid("10.1.0.1"), reply("10.0.0.2"), at_s(0));
  cache.install(eid("10.1.0.2"), negative_reply(), at_s(0));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.positive_size(), 0u);
}

TEST(MapCache, WalkVisitsAll) {
  MapCache cache;
  cache.install(eid("10.1.0.1"), reply("10.0.0.2"), at_s(0));
  cache.install(eid("10.1.0.2"), reply("10.0.0.3"), at_s(0));
  int count = 0;
  cache.walk([&](const VnEid&, const MapCacheEntry&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(MapCache, WalkVisitsMruFirst) {
  // The walk order is part of the contract (probe sweeps and inspect dumps
  // rely on recency order): most recently used first.
  MapCache cache;
  cache.install(eid("10.1.0.1"), reply("10.0.0.2"), at_s(0));
  cache.install(eid("10.1.0.2"), reply("10.0.0.3"), at_s(0));
  cache.install(eid("10.1.0.3"), reply("10.0.0.4"), at_s(0));
  // Touch .1: it becomes MRU ahead of .3 and .2.
  EXPECT_NE(cache.lookup(eid("10.1.0.1"), at_s(1)), nullptr);
  std::vector<VnEid> order;
  cache.walk([&](const VnEid& key, const MapCacheEntry&) { order.push_back(key); });
  EXPECT_EQ(order,
            (std::vector<VnEid>{eid("10.1.0.1"), eid("10.1.0.3"), eid("10.1.0.2")}));
}

TEST(MapCache, SlotReuseChurnStaysConsistent) {
  // Hammer install/invalidate cycles through the free list: recycled slots
  // must never leak stale links into the LRU chain or the counters.
  MapCache cache{4};
  for (int cycle = 0; cycle < 200; ++cycle) {
    const auto key =
        VnEid{VnId{1}, Eid{Ipv4Address{0x0A010000u + static_cast<std::uint32_t>(cycle % 8)}}};
    cache.install(key, reply("10.0.0.2"), at_s(cycle));
    if (cycle % 3 == 0) cache.invalidate(key);
    EXPECT_LE(cache.size(), 4u);
    EXPECT_LE(cache.positive_size(), cache.size());
  }
  std::size_t walked = 0;
  cache.walk([&](const VnEid&, const MapCacheEntry&) { ++walked; });
  EXPECT_EQ(walked, cache.size());
}

TEST(MapCache, GroupTagCarriedFromReply) {
  MapCache cache;
  MapReply r = reply("10.0.0.2");
  r.group = 77;
  cache.install(eid("10.1.0.5"), r, at_s(0));
  EXPECT_EQ(cache.lookup(eid("10.1.0.5"), at_s(1))->group, net::GroupId{77});
}

}  // namespace
}  // namespace sda::lisp
