// Replica anti-entropy (PR 4): order-independent digests over MapServer
// databases, two-way newest-wins reconciliation, and tombstone-backed
// deletion propagation — how a replica that missed registrations during an
// outage window converges back to the primary without replaying the feed.
#include <gtest/gtest.h>

#include "lisp/map_server.hpp"

namespace sda::lisp {
namespace {

using net::Eid;
using net::GroupId;
using net::Ipv4Address;
using net::Rloc;
using net::VnEid;
using net::VnId;
using std::chrono::seconds;

VnEid eid(const char* ip) { return VnEid{VnId{1}, Eid{*Ipv4Address::parse(ip)}}; }

MappingRecord record(const char* rloc_ip, sim::SimTime refreshed = {},
                     std::uint32_t ttl = 3600) {
  MappingRecord r;
  r.rlocs = {Rloc{*Ipv4Address::parse(rloc_ip)}};
  r.ttl_seconds = ttl;
  r.refreshed_at = refreshed;
  return r;
}

sim::SimTime at(int s) { return sim::SimTime{seconds{s}}; }

TEST(Digest, EmptyDatabasesAgree) {
  MapServer a, b;
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Digest, OrderIndependent) {
  MapServer a, b;
  a.register_mapping(eid("10.1.0.1"), record("10.0.0.2"));
  a.register_mapping(eid("10.1.0.2"), record("10.0.0.3"));
  b.register_mapping(eid("10.1.0.2"), record("10.0.0.3"));
  b.register_mapping(eid("10.1.0.1"), record("10.0.0.2"));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Digest, IgnoresRefreshTimestamps) {
  // Replicas stamp their own arrival time for the same fanned-out
  // register; that difference must not read as divergence.
  MapServer a, b;
  a.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  b.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(2)));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Digest, SensitiveToContent) {
  MapServer a, b;
  a.register_mapping(eid("10.1.0.1"), record("10.0.0.2"));
  b.register_mapping(eid("10.1.0.1"), record("10.0.0.3"));  // different RLOC
  EXPECT_NE(a.digest(), b.digest());
  b.register_mapping(eid("10.1.0.1"), record("10.0.0.2"));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Reconcile, CopiesMissingEntriesBothWays) {
  MapServer primary, replica;
  primary.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  replica.register_mapping(eid("10.1.0.9"), record("10.0.0.4", at(2)));

  const auto stats = primary.reconcile_with(replica, at(10));
  EXPECT_EQ(stats.pushed, 1u);
  EXPECT_EQ(stats.pulled, 1u);
  EXPECT_EQ(stats.removed_here, 0u);
  EXPECT_EQ(stats.removed_peer, 0u);
  EXPECT_EQ(primary.mapping_count(), 2u);
  EXPECT_EQ(replica.mapping_count(), 2u);
  EXPECT_EQ(primary.digest(), replica.digest());
}

TEST(Reconcile, NewestRegistrationWinsOnConflict) {
  MapServer primary, replica;
  primary.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(5)));
  replica.register_mapping(eid("10.1.0.1"), record("10.0.0.7", at(9)));  // newer

  primary.reconcile_with(replica, at(10));
  EXPECT_EQ(primary.resolve(eid("10.1.0.1"))->primary_rloc(),
            *Ipv4Address::parse("10.0.0.7"));
  EXPECT_EQ(primary.digest(), replica.digest());
}

TEST(Reconcile, TombstonePropagatesDeletion) {
  // Both replicas held the mapping; the primary saw the deregistration
  // while the replica was down. Without the tombstone the reconcile would
  // resurrect the dead entry from the replica.
  MapServer primary, replica;
  const auto owner = *Ipv4Address::parse("10.0.0.2");
  primary.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  replica.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  ASSERT_TRUE(primary.deregister(eid("10.1.0.1"), owner, at(5)));
  ASSERT_TRUE(primary.tombstone(eid("10.1.0.1")).has_value());

  const auto stats = primary.reconcile_with(replica, at(10));
  EXPECT_EQ(stats.removed_peer, 1u);
  EXPECT_EQ(replica.mapping_count(), 0u);
  EXPECT_EQ(primary.digest(), replica.digest());
}

TEST(Reconcile, ReRegistrationAfterDeletionSurvives) {
  // deregister at t=5, endpoint re-registers on the replica at t=8: the
  // newer registration must beat the older tombstone.
  MapServer primary, replica;
  const auto owner = *Ipv4Address::parse("10.0.0.2");
  primary.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  primary.deregister(eid("10.1.0.1"), owner, at(5));
  replica.register_mapping(eid("10.1.0.1"), record("10.0.0.3", at(8)));

  primary.reconcile_with(replica, at(10));
  ASSERT_TRUE(primary.resolve(eid("10.1.0.1")).has_value());
  EXPECT_EQ(primary.resolve(eid("10.1.0.1"))->primary_rloc(),
            *Ipv4Address::parse("10.0.0.3"));
  EXPECT_EQ(primary.digest(), replica.digest());
}

TEST(Reconcile, IdempotentOnceConverged) {
  MapServer primary, replica;
  primary.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  primary.register_mapping(eid("10.1.0.2"), record("10.0.0.3", at(2)));

  const auto first = primary.reconcile_with(replica, at(10));
  EXPECT_EQ(first.total(), 2u);
  const auto second = primary.reconcile_with(replica, at(11));
  EXPECT_EQ(second.total(), 0u);
}

TEST(Reconcile, TombstonesPrunedPastHorizon) {
  MapServer primary, replica;
  const auto owner = *Ipv4Address::parse("10.0.0.2");
  primary.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  primary.deregister(eid("10.1.0.1"), owner, at(5));
  EXPECT_EQ(primary.tombstone_count(), 1u);

  primary.reconcile_with(replica, at(100), /*tombstone_horizon=*/seconds{30});
  EXPECT_EQ(primary.tombstone_count(), 0u);
}

TEST(Reconcile, RepairsFlowThroughPublishFeed) {
  // The primary's pub/sub subscribers (borders) must hear about entries
  // pulled in from the replica during a repair.
  MapServer primary, replica;
  int published = 0;
  primary.set_publish_callback(
      [&](const net::VnEid&, const MappingRecord*) { ++published; });
  replica.register_mapping(eid("10.1.0.9"), record("10.0.0.4", at(2)));

  primary.reconcile_with(replica, at(10));
  EXPECT_EQ(published, 1);
}

}  // namespace
}  // namespace sda::lisp
