// Replica anti-entropy (PR 4): order-independent digests over MapServer
// databases, two-way newest-wins reconciliation, and tombstone-backed
// deletion propagation — how a replica that missed registrations during an
// outage window converges back to the primary without replaying the feed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lisp/map_server.hpp"

namespace sda::lisp {
namespace {

using net::Eid;
using net::GroupId;
using net::Ipv4Address;
using net::Rloc;
using net::VnEid;
using net::VnId;
using std::chrono::seconds;

VnEid eid(const char* ip) { return VnEid{VnId{1}, Eid{*Ipv4Address::parse(ip)}}; }

MappingRecord record(const char* rloc_ip, sim::SimTime refreshed = {},
                     std::uint32_t ttl = 3600) {
  MappingRecord r;
  r.rlocs = {Rloc{*Ipv4Address::parse(rloc_ip)}};
  r.ttl_seconds = ttl;
  r.refreshed_at = refreshed;
  return r;
}

sim::SimTime at(int s) { return sim::SimTime{seconds{s}}; }

TEST(Digest, EmptyDatabasesAgree) {
  MapServer a, b;
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Digest, OrderIndependent) {
  MapServer a, b;
  a.register_mapping(eid("10.1.0.1"), record("10.0.0.2"));
  a.register_mapping(eid("10.1.0.2"), record("10.0.0.3"));
  b.register_mapping(eid("10.1.0.2"), record("10.0.0.3"));
  b.register_mapping(eid("10.1.0.1"), record("10.0.0.2"));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Digest, IgnoresRefreshTimestamps) {
  // Replicas stamp their own arrival time for the same fanned-out
  // register; that difference must not read as divergence.
  MapServer a, b;
  a.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  b.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(2)));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Digest, SensitiveToContent) {
  MapServer a, b;
  a.register_mapping(eid("10.1.0.1"), record("10.0.0.2"));
  b.register_mapping(eid("10.1.0.1"), record("10.0.0.3"));  // different RLOC
  EXPECT_NE(a.digest(), b.digest());
  b.register_mapping(eid("10.1.0.1"), record("10.0.0.2"));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Reconcile, CopiesMissingEntriesBothWays) {
  MapServer primary, replica;
  primary.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  replica.register_mapping(eid("10.1.0.9"), record("10.0.0.4", at(2)));

  const auto stats = primary.reconcile_with(replica, at(10));
  EXPECT_EQ(stats.pushed, 1u);
  EXPECT_EQ(stats.pulled, 1u);
  EXPECT_EQ(stats.removed_here, 0u);
  EXPECT_EQ(stats.removed_peer, 0u);
  EXPECT_EQ(primary.mapping_count(), 2u);
  EXPECT_EQ(replica.mapping_count(), 2u);
  EXPECT_EQ(primary.digest(), replica.digest());
}

TEST(Reconcile, NewestRegistrationWinsOnConflict) {
  MapServer primary, replica;
  primary.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(5)));
  replica.register_mapping(eid("10.1.0.1"), record("10.0.0.7", at(9)));  // newer

  primary.reconcile_with(replica, at(10));
  EXPECT_EQ(primary.resolve(eid("10.1.0.1"))->primary_rloc(),
            *Ipv4Address::parse("10.0.0.7"));
  EXPECT_EQ(primary.digest(), replica.digest());
}

TEST(Reconcile, TombstonePropagatesDeletion) {
  // Both replicas held the mapping; the primary saw the deregistration
  // while the replica was down. Without the tombstone the reconcile would
  // resurrect the dead entry from the replica.
  MapServer primary, replica;
  const auto owner = *Ipv4Address::parse("10.0.0.2");
  primary.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  replica.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  ASSERT_TRUE(primary.deregister(eid("10.1.0.1"), owner, at(5)));
  ASSERT_TRUE(primary.tombstone(eid("10.1.0.1")).has_value());

  const auto stats = primary.reconcile_with(replica, at(10));
  EXPECT_EQ(stats.removed_peer, 1u);
  EXPECT_EQ(replica.mapping_count(), 0u);
  EXPECT_EQ(primary.digest(), replica.digest());
}

TEST(Reconcile, ReRegistrationAfterDeletionSurvives) {
  // deregister at t=5, endpoint re-registers on the replica at t=8: the
  // newer registration must beat the older tombstone.
  MapServer primary, replica;
  const auto owner = *Ipv4Address::parse("10.0.0.2");
  primary.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  primary.deregister(eid("10.1.0.1"), owner, at(5));
  replica.register_mapping(eid("10.1.0.1"), record("10.0.0.3", at(8)));

  primary.reconcile_with(replica, at(10));
  ASSERT_TRUE(primary.resolve(eid("10.1.0.1")).has_value());
  EXPECT_EQ(primary.resolve(eid("10.1.0.1"))->primary_rloc(),
            *Ipv4Address::parse("10.0.0.3"));
  EXPECT_EQ(primary.digest(), replica.digest());
}

TEST(Reconcile, IdempotentOnceConverged) {
  MapServer primary, replica;
  primary.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  primary.register_mapping(eid("10.1.0.2"), record("10.0.0.3", at(2)));

  const auto first = primary.reconcile_with(replica, at(10));
  EXPECT_EQ(first.total(), 2u);
  const auto second = primary.reconcile_with(replica, at(11));
  EXPECT_EQ(second.total(), 0u);
}

TEST(Reconcile, TombstonesPrunedPastHorizon) {
  MapServer primary, replica;
  const auto owner = *Ipv4Address::parse("10.0.0.2");
  primary.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  primary.deregister(eid("10.1.0.1"), owner, at(5));
  EXPECT_EQ(primary.tombstone_count(), 1u);

  primary.reconcile_with(replica, at(100), /*tombstone_horizon=*/seconds{30});
  EXPECT_EQ(primary.tombstone_count(), 0u);
}

TEST(CatchupLog, AppendsMutationsInSequence) {
  MapServer db;
  db.set_log_capacity(8);
  EXPECT_EQ(db.log_next_seq(), 1u);
  EXPECT_EQ(db.log_horizon_seq(), 1u);

  db.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  db.register_mapping(eid("10.1.0.2"), record("10.0.0.3", at(2)));
  db.deregister(eid("10.1.0.1"), *Ipv4Address::parse("10.0.0.2"), at(3));
  EXPECT_EQ(db.log_next_seq(), 4u);

  std::vector<MapServer::LogEntry> seen;
  EXPECT_EQ(db.replay_log(1, [&](const MapServer::LogEntry& e) { seen.push_back(e); }), 3u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].seq, 1u);
  EXPECT_EQ(seen[0].eid, eid("10.1.0.1"));
  EXPECT_FALSE(seen[0].tombstone);
  EXPECT_EQ(seen[2].seq, 3u);
  EXPECT_TRUE(seen[2].tombstone);  // the deregister
}

TEST(CatchupLog, WraparoundMovesHorizonAndStaysOrdered) {
  // A ring of 4 holding 10 appends: seqs 1..6 fell off the horizon, the
  // ring holds exactly [7, 10], and replay still visits in seq order
  // across the physical wrap point.
  MapServer db;
  db.set_log_capacity(4);
  for (int i = 0; i < 10; ++i) {
    db.register_mapping(eid(("10.1.0." + std::to_string(i + 1)).c_str()),
                        record("10.0.0.2", at(i)));
  }
  EXPECT_EQ(db.log_next_seq(), 11u);
  EXPECT_EQ(db.log_horizon_seq(), 7u);
  EXPECT_FALSE(db.log_covers(6));
  EXPECT_TRUE(db.log_covers(7));
  EXPECT_TRUE(db.log_covers(11));  // nothing to replay is still "covered"

  std::vector<std::uint64_t> seqs;
  EXPECT_EQ(db.replay_log(7, [&](const MapServer::LogEntry& e) { seqs.push_back(e.seq); }),
            4u);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{7, 8, 9, 10}));
  // Replaying from below the horizon yields nothing: entries 3..6 are
  // gone, so a partial replay would silently skip mutations — the caller
  // must check log_covers and take the snapshot path instead.
  EXPECT_EQ(db.replay_log(3, [](const MapServer::LogEntry&) {}), 0u);
}

TEST(CatchupLog, ReplayConvergesLaggingReplica) {
  // Delta replay must land the replica on the exact state a snapshot
  // reconcile would: registers, a refresh conflict, and a deletion.
  MapServer leader, replica;
  leader.set_log_capacity(64);
  leader.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  leader.register_mapping(eid("10.1.0.2"), record("10.0.0.3", at(2)));
  leader.register_mapping(eid("10.1.0.1"), record("10.0.0.7", at(5)));  // move
  leader.deregister(eid("10.1.0.2"), *Ipv4Address::parse("10.0.0.3"), at(6));

  leader.replay_log(1, [&](const MapServer::LogEntry& e) { replica.apply_log_entry(e); });
  EXPECT_EQ(replica.digest(), leader.digest());
  EXPECT_EQ(replica.mapping_count(), 1u);

  // Replay is idempotent: applying the same delta again changes nothing.
  leader.replay_log(1, [&](const MapServer::LogEntry& e) { replica.apply_log_entry(e); });
  EXPECT_EQ(replica.digest(), leader.digest());
}

TEST(CatchupLog, ClearBumpsGenerationAndKeepsSeqMonotonic) {
  // A cold restart must be distinguishable from plain lag: the generation
  // changes and the next sequence never goes backwards, so a peer's stale
  // replay cursor can be rejected in favor of the snapshot path.
  MapServer db;
  db.set_log_capacity(4);
  db.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  const std::uint64_t gen = db.generation();
  const std::uint64_t seq = db.log_next_seq();
  db.clear();
  EXPECT_EQ(db.generation(), gen + 1);
  EXPECT_GE(db.log_next_seq(), seq);
}

TEST(Reconcile, RejoinPastHorizonConvergesViaSnapshot) {
  // A replica that rejoins after the leader's log horizon has passed (and
  // after tombstones were pruned) cannot replay — but the snapshot
  // reconcile still converges it, including the deletion it slept through.
  MapServer leader, replica;
  leader.set_log_capacity(2);
  leader.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  replica.register_mapping(eid("10.1.0.1"), record("10.0.0.2", at(1)));
  const std::uint64_t replica_cursor = leader.log_next_seq() - 1;

  // The replica sleeps through a deletion and a burst of registrations
  // that wraps the tiny log past its cursor.
  leader.deregister(eid("10.1.0.1"), *Ipv4Address::parse("10.0.0.2"), at(2));
  for (int i = 0; i < 4; ++i) {
    leader.register_mapping(eid(("10.1.1." + std::to_string(i + 1)).c_str()),
                            record("10.0.0.2", at(3 + i)));
  }
  EXPECT_FALSE(leader.log_covers(replica_cursor + 1));

  // Snapshot path: a full reconcile (with the deletion's tombstone still
  // within the horizon) converges the rejoiner.
  leader.reconcile_with(replica, at(20), /*tombstone_horizon=*/seconds{3600});
  EXPECT_EQ(replica.digest(), leader.digest());
  EXPECT_EQ(replica.mapping_count(), 4u);
  EXPECT_EQ(replica.find_host(eid("10.1.0.1")), nullptr);  // the slept-through deletion
}

TEST(Reconcile, RepairsFlowThroughPublishFeed) {
  // The primary's pub/sub subscribers (borders) must hear about entries
  // pulled in from the replica during a repair.
  MapServer primary, replica;
  int published = 0;
  primary.set_publish_callback(
      [&](const net::VnEid&, const MappingRecord*) { ++published; });
  replica.register_mapping(eid("10.1.0.9"), record("10.0.0.4", at(2)));

  primary.reconcile_with(replica, at(10));
  EXPECT_EQ(published, 1);
}

}  // namespace
}  // namespace sda::lisp
