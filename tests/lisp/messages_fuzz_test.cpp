// Fuzz-style robustness: random and mutated byte strings must never crash
// the control-plane codecs, and valid messages must survive mutation
// checks (decode either fails cleanly or yields a re-encodable message).
#include <gtest/gtest.h>

#include "lisp/messages.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"

namespace sda::lisp {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  int iterations;
};

class MessageFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(MessageFuzz, RandomBytesNeverCrash) {
  sim::Rng rng{GetParam().seed};
  int decoded_ok = 0;
  for (int i = 0; i < GetParam().iterations; ++i) {
    std::vector<std::uint8_t> bytes(rng.next_below(120));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto message = decode_message(bytes);
    if (message) {
      ++decoded_ok;
      // Anything that decodes must re-encode without crashing.
      const auto re = encode_message(*message);
      EXPECT_FALSE(re.empty());
    }
  }
  // Random bytes rarely form a valid message; mostly they are rejected.
  EXPECT_LT(decoded_ok, GetParam().iterations / 4);
}

TEST_P(MessageFuzz, MutatedValidMessagesNeverCrash) {
  sim::Rng rng{GetParam().seed ^ 0xF00D};
  MapReply reply;
  reply.nonce = 7;
  reply.eid = net::VnEid{net::VnId{100}, net::Eid{net::Ipv4Address{10, 1, 2, 3}}};
  reply.rlocs = {net::Rloc{net::Ipv4Address{10, 0, 0, 1}},
                 net::Rloc{net::Ipv4Address{10, 0, 0, 2}}};
  const auto base = encode_message(Message{reply});

  for (int i = 0; i < GetParam().iterations; ++i) {
    auto mutated = base;
    // 1-3 random byte mutations, possibly a truncation or extension.
    const auto mutations = 1 + rng.next_below(3);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<std::uint8_t>(rng.next_below(256));
    }
    if (rng.chance(0.3)) mutated.resize(rng.next_below(mutated.size()) + 1);
    if (rng.chance(0.2)) mutated.push_back(static_cast<std::uint8_t>(rng.next_below(256)));

    const auto message = decode_message(mutated);
    if (message) {
      const auto re = encode_message(*message);
      EXPECT_FALSE(re.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzz,
                         ::testing::Values(FuzzCase{1, 3000}, FuzzCase{2, 3000},
                                           FuzzCase{3, 3000}));

TEST(FrameFuzz, RandomBytesNeverCrashFrameDecoders) {
  sim::Rng rng{99};
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> bytes(rng.next_below(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    (void)net::OverlayFrame::decode(bytes);
    (void)net::FabricFrame::decode(bytes);
  }
  SUCCEED();
}

}  // namespace
}  // namespace sda::lisp
