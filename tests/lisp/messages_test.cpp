#include "lisp/messages.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace sda::lisp {
namespace {

using net::Eid;
using net::Ipv4Address;
using net::Rloc;
using net::VnEid;
using net::VnId;

VnEid sample_eid() { return VnEid{VnId{100}, Eid{Ipv4Address{10, 1, 2, 3}}}; }

TEST(Messages, MapRequestRoundTrip) {
  const MapRequest m{0xDEADBEEF12345678ull, sample_eid(), Ipv4Address{10, 0, 0, 5}, true};
  const auto bytes = encode_message(Message{m});
  const auto decoded = decode_message(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<MapRequest>(*decoded), m);
}

TEST(Messages, MapReplyPositiveRoundTrip) {
  MapReply m;
  m.nonce = 7;
  m.eid = sample_eid();
  m.rlocs = {Rloc{Ipv4Address{10, 0, 0, 2}, 1, 50}, Rloc{Ipv4Address{10, 0, 0, 3}, 2, 50}};
  m.action = MapReplyAction::NoAction;
  m.ttl_seconds = 3600;
  m.group = 42;
  const auto decoded = decode_message(encode_message(Message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<MapReply>(*decoded), m);
  EXPECT_FALSE(std::get<MapReply>(*decoded).negative());
}

TEST(Messages, MapReplyNegativeRoundTrip) {
  MapReply m;
  m.nonce = 9;
  m.eid = sample_eid();
  m.action = MapReplyAction::NativelyForward;
  m.ttl_seconds = 60;
  const auto decoded = decode_message(encode_message(Message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<MapReply>(*decoded).negative());
  EXPECT_EQ(std::get<MapReply>(*decoded).action, MapReplyAction::NativelyForward);
}

TEST(Messages, MapRegisterRoundTrip) {
  MapRegister m;
  m.nonce = 11;
  m.eid = VnEid{VnId{5}, Eid{net::MacAddress::from_u64(0x02AB)}};  // MAC EID (§3.5)
  m.rlocs = {Rloc{Ipv4Address{10, 0, 0, 9}}};
  m.ttl_seconds = 86400;
  m.want_notify = false;
  m.group = 30;
  const auto decoded = decode_message(encode_message(Message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<MapRegister>(*decoded), m);
}

TEST(Messages, MapNotifyRoundTrip) {
  const MapNotify m{3, sample_eid(), {Rloc{Ipv4Address{10, 0, 0, 4}}}};
  const auto decoded = decode_message(encode_message(Message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<MapNotify>(*decoded), m);
}

TEST(Messages, SmrRoundTrip) {
  const SolicitMapRequest m{sample_eid(), Ipv4Address{10, 0, 0, 6}};
  const auto decoded = decode_message(encode_message(Message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<SolicitMapRequest>(*decoded), m);
}

TEST(Messages, SubscribeAndPublishRoundTrip) {
  const Subscribe s{Ipv4Address{10, 0, 0, 1}, 0};
  const auto ds = decode_message(encode_message(Message{s}));
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ(std::get<Subscribe>(*ds), s);

  Publish p;
  p.eid = sample_eid();
  p.rlocs = {Rloc{Ipv4Address{10, 0, 0, 2}}};
  p.ttl_seconds = 100;
  const auto dp = decode_message(encode_message(Message{p}));
  ASSERT_TRUE(dp.has_value());
  EXPECT_EQ(std::get<Publish>(*dp), p);
  EXPECT_FALSE(std::get<Publish>(*dp).withdrawal());

  Publish withdrawal;
  withdrawal.eid = sample_eid();
  const auto dw = decode_message(encode_message(Message{withdrawal}));
  ASSERT_TRUE(dw.has_value());
  EXPECT_TRUE(std::get<Publish>(*dw).withdrawal());
}

TEST(Messages, PublishSequenceNumberRoundTrip) {
  Publish p;
  p.eid = sample_eid();
  p.rlocs = {Rloc{Ipv4Address{10, 0, 0, 2}}};
  p.ttl_seconds = 100;
  p.seq = 0x0123456789ABCDEFull;  // exercises all eight bytes on the wire
  const auto decoded = decode_message(encode_message(Message{p}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<Publish>(*decoded).seq, p.seq);
  EXPECT_EQ(std::get<Publish>(*decoded), p);
}

TEST(Messages, Ipv6EidRoundTrip) {
  MapRequest m;
  m.eid = VnEid{VnId{2}, Eid{*net::Ipv6Address::parse("2001:db8::42")}};
  m.itr_rloc = Ipv4Address{10, 0, 0, 1};
  const auto decoded = decode_message(encode_message(Message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<MapRequest>(*decoded).eid, m.eid);
}

TEST(Messages, UnknownTypeTagRejected) {
  std::vector<std::uint8_t> bytes = {99, 0, 0, 0};
  EXPECT_FALSE(decode_message(bytes).has_value());
}

TEST(Messages, EmptyInputRejected) {
  EXPECT_FALSE(decode_message({}).has_value());
}

TEST(Messages, EveryTruncationRejected) {
  MapReply m;
  m.nonce = 7;
  m.eid = sample_eid();
  m.rlocs = {Rloc{Ipv4Address{10, 0, 0, 2}}};
  const auto full = encode_message(Message{m});
  for (std::size_t len = 1; len < full.size(); ++len) {
    EXPECT_FALSE(decode_message({full.data(), len}).has_value()) << len;
  }
}

TEST(Messages, InvalidActionRejected) {
  MapReply m;
  m.eid = sample_eid();
  auto bytes = encode_message(Message{m});
  // action byte sits right after nonce(8) + vn(3) + family(1) + addr(4) +
  // rloc count(1); tag(1) first.
  const std::size_t action_offset = 1 + 8 + 3 + 1 + 4 + 1;
  bytes[action_offset] = 7;
  EXPECT_FALSE(decode_message(bytes).has_value());
}

TEST(Messages, WireSizeMatchesEncoding) {
  MapRegister m;
  m.eid = sample_eid();
  m.rlocs = {Rloc{Ipv4Address{10, 0, 0, 9}}};
  const Message msg{m};
  EXPECT_EQ(message_wire_size(msg), encode_message(msg).size());
}

TEST(Messages, TraceIdRoundTripsOnEveryCarryingMessage) {
  // The causal trace id is a trailing optional on all six control messages
  // that carry it; a nonzero id must survive encode/decode exactly.
  constexpr std::uint64_t kTrace = 0xFEEDFACE00C0FFEEull;

  MapRequest req{1, sample_eid(), Ipv4Address{10, 0, 0, 5}, false};
  req.trace = kTrace;
  EXPECT_EQ(std::get<MapRequest>(*decode_message(encode_message(Message{req}))).trace, kTrace);

  MapReply rep;
  rep.eid = sample_eid();
  rep.trace = kTrace;
  EXPECT_EQ(std::get<MapReply>(*decode_message(encode_message(Message{rep}))).trace, kTrace);

  MapRegister reg;
  reg.eid = sample_eid();
  reg.rlocs = {Rloc{Ipv4Address{10, 0, 0, 9}}};
  reg.trace = kTrace;
  EXPECT_EQ(std::get<MapRegister>(*decode_message(encode_message(Message{reg}))).trace, kTrace);

  MapNotify notify{3, sample_eid(), {Rloc{Ipv4Address{10, 0, 0, 4}}}};
  notify.epoch = 5;  // trace rides after the epoch fence field
  notify.trace = kTrace;
  const auto dn = std::get<MapNotify>(*decode_message(encode_message(Message{notify})));
  EXPECT_EQ(dn.trace, kTrace);
  EXPECT_EQ(dn.epoch, 5u);

  SolicitMapRequest smr{sample_eid(), Ipv4Address{10, 0, 0, 6}};
  smr.trace = kTrace;
  EXPECT_EQ(std::get<SolicitMapRequest>(*decode_message(encode_message(Message{smr}))).trace,
            kTrace);

  Publish pub;
  pub.eid = sample_eid();
  pub.rlocs = {Rloc{Ipv4Address{10, 0, 0, 2}}};
  pub.trace = kTrace;
  EXPECT_EQ(std::get<Publish>(*decode_message(encode_message(Message{pub}))).trace, kTrace);
}

TEST(Messages, ZeroTraceKeepsPreTraceWireFormat) {
  // trace == 0 must encode to exactly the pre-assurance byte stream: the
  // optional field is simply absent, so untraced fabrics interoperate with
  // recordings made before the field existed.
  MapRegister m;
  m.eid = sample_eid();
  m.rlocs = {Rloc{Ipv4Address{10, 0, 0, 9}}};
  const auto untraced = encode_message(Message{m});
  m.trace = 1;
  const auto traced = encode_message(Message{m});
  EXPECT_EQ(traced.size(), untraced.size() + 8);  // one trailing u64
  // The traced encoding is a strict extension: shared prefix is identical.
  EXPECT_TRUE(std::equal(untraced.begin(), untraced.end(), traced.begin()));
  // Decoding the untraced bytes yields trace == 0, not garbage.
  EXPECT_EQ(std::get<MapRegister>(*decode_message(untraced)).trace, 0u);
  // wire_size accounting agrees in both shapes.
  m.trace = 0;
  EXPECT_EQ(message_wire_size(Message{m}), untraced.size());
  m.trace = 1;
  EXPECT_EQ(message_wire_size(Message{m}), traced.size());
}

TEST(Messages, TypeNames) {
  EXPECT_EQ(message_type_name(Message{MapRequest{}}), "map-request");
  EXPECT_EQ(message_type_name(Message{MapReply{}}), "map-reply");
  EXPECT_EQ(message_type_name(Message{MapRegister{}}), "map-register");
  EXPECT_EQ(message_type_name(Message{MapNotify{}}), "map-notify");
  EXPECT_EQ(message_type_name(Message{SolicitMapRequest{}}), "smr");
  EXPECT_EQ(message_type_name(Message{Subscribe{}}), "subscribe");
  EXPECT_EQ(message_type_name(Message{Publish{}}), "publish");
}

}  // namespace
}  // namespace sda::lisp
