// Bounded admission on the routing-server front end (overload-safe
// degradation): beyond the configured limit, submissions are shed with an
// explicit retry-after instead of queueing unboundedly, so an onboarding
// storm degrades into deferred work instead of unbounded sojourn times.
#include <gtest/gtest.h>

#include "lisp/map_server_node.hpp"

namespace sda::lisp {
namespace {

using net::Eid;
using net::Ipv4Address;
using net::Rloc;
using net::VnEid;
using net::VnId;
using std::chrono::milliseconds;

VnEid eid(const char* ip) { return VnEid{VnId{1}, Eid{*Ipv4Address::parse(ip)}}; }

struct AdmissionFixture : ::testing::Test {
  AdmissionFixture() : node(sim, server, config(), 42) {}

  static MapServerNodeConfig config() {
    MapServerNodeConfig c;
    c.rloc = *Ipv4Address::parse("10.0.0.1");
    c.workers = 2;
    c.request_service = std::chrono::microseconds{25};
    c.register_service = std::chrono::microseconds{30};
    c.jitter_sigma = 0.0;
    c.admission_limit = 4;  // 2 in service + 2 waiting
    c.shed_retry_after = milliseconds{150};
    return c;
  }

  MapRequest request(const char* ip) {
    MapRequest r;
    r.nonce = nonce++;
    r.eid = eid(ip);
    return r;
  }

  sim::Simulator sim;
  MapServer server;
  MapServerNode node;
  std::uint64_t nonce = 1;
};

TEST_F(AdmissionFixture, BurstBeyondLimitIsShedWithRetryAfter) {
  int answered = 0;
  int shed = 0;
  sim::Duration hint{};
  for (int i = 0; i < 10; ++i) {
    node.submit_request(
        request("10.9.9.9"), [&](const MapReply&, sim::Duration) { ++answered; },
        [&](sim::Duration retry_after) {
          ++shed;
          hint = retry_after;
        });
  }
  sim.run();
  EXPECT_EQ(answered, 4);
  EXPECT_EQ(shed, 6);
  EXPECT_EQ(hint, milliseconds{150});
  EXPECT_EQ(node.shed_submissions(), 6u);
  EXPECT_EQ(node.dropped_submissions(), 0u);  // shed != offline drop
  // The backlog never grew past the admission limit.
  EXPECT_LE(node.peak_backlog(), 4u);
}

TEST_F(AdmissionFixture, RegistersShedLikeRequests) {
  int acked = 0;
  int shed = 0;
  for (int i = 0; i < 8; ++i) {
    MapRegister reg;
    reg.nonce = nonce++;
    reg.eid = eid("10.1.0.5");
    reg.rlocs = {Rloc{*Ipv4Address::parse("10.0.0.2")}};
    reg.ttl_seconds = 3600;
    node.submit_register(
        reg, [&](const RegisterOutcome&, const MapNotify&, sim::Duration) { ++acked; },
        [&](sim::Duration) { ++shed; });
  }
  sim.run();
  EXPECT_EQ(acked, 4);
  EXPECT_EQ(shed, 4);
}

TEST_F(AdmissionFixture, SpacedLoadIsNeverShed) {
  int answered = 0;
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(sim::SimTime{milliseconds{i}}, [&, i] {
      node.submit_request(
          request("10.9.9.9"), [&](const MapReply&, sim::Duration) { ++answered; },
          [&](sim::Duration) { ++shed; });
    });
  }
  sim.run();
  EXPECT_EQ(answered, 10);
  EXPECT_EQ(shed, 0);
}

TEST_F(AdmissionFixture, AdmissionDrainsAsWorkCompletes) {
  // Fill the queue, let it drain, then a second burst is admitted again.
  for (int i = 0; i < 4; ++i) node.submit_request(request("10.9.9.9"), {});
  sim.run();
  int answered = 0;
  int shed = 0;
  for (int i = 0; i < 4; ++i) {
    node.submit_request(
        request("10.9.9.9"), [&](const MapReply&, sim::Duration) { ++answered; },
        [&](sim::Duration) { ++shed; });
  }
  sim.run();
  EXPECT_EQ(answered, 4);
  EXPECT_EQ(shed, 0);
}

TEST(AdmissionUnlimited, ZeroLimitNeverSheds) {
  sim::Simulator sim;
  MapServer server;
  MapServerNodeConfig c;
  c.rloc = *Ipv4Address::parse("10.0.0.1");
  c.workers = 1;
  c.jitter_sigma = 0.0;
  MapServerNode node{sim, server, c, 42};
  int shed = 0;
  for (int i = 0; i < 100; ++i) {
    MapRequest r;
    r.eid = eid("10.9.9.9");
    node.submit_request(r, {}, [&](sim::Duration) { ++shed; });
  }
  sim.run();
  EXPECT_EQ(shed, 0);
  EXPECT_EQ(node.peak_backlog(), 100u);
}

TEST_F(AdmissionFixture, OfflineDropsStillWinOverShedding) {
  node.set_online(false);
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    node.submit_request(request("10.9.9.9"), {}, [&](sim::Duration) { ++shed; });
  }
  sim.run();
  // A dead server cannot send busy signals: submissions vanish silently.
  EXPECT_EQ(shed, 0);
  EXPECT_EQ(node.dropped_submissions(), 10u);
}

// --- Post-election admission ramp (PR 9) ------------------------------------

TEST_F(AdmissionFixture, RampClimbsFromQuarterFloorToFullLimit) {
  // A fresh leader opens at a quarter of its admission limit and climbs
  // linearly back to full over the window, so the re-registration rush
  // right after an election is shed instead of queued.
  EXPECT_EQ(node.effective_admission_limit(), 4u);
  EXPECT_FALSE(node.ramp_active());

  node.begin_admission_ramp(milliseconds{1000});
  EXPECT_TRUE(node.ramp_active());
  EXPECT_EQ(node.effective_admission_limit(), 1u);  // floor: limit / 4

  std::size_t mid = 0;
  std::size_t end = 0;
  bool active_mid = false;
  bool active_end = true;
  sim.schedule_after(milliseconds{500}, [&] {
    mid = node.effective_admission_limit();
    active_mid = node.ramp_active();
  });
  sim.schedule_after(milliseconds{1100}, [&] {
    end = node.effective_admission_limit();
    active_end = node.ramp_active();
  });
  sim.run();

  EXPECT_TRUE(active_mid);
  EXPECT_GT(mid, 1u);
  EXPECT_LT(mid, 4u);
  EXPECT_FALSE(active_end);
  EXPECT_EQ(end, 4u);  // window closed: full limit restored
}

TEST_F(AdmissionFixture, RampShedsAreCountedSeparately) {
  // Sheds caused by the lowered ramp limit (in-flight below the configured
  // limit) are attributed to the ramp, so telemetry can tell election
  // stampede deflection from plain overload.
  node.begin_admission_ramp(milliseconds{1000});
  ASSERT_EQ(node.effective_admission_limit(), 1u);

  int answered = 0;
  int shed = 0;
  for (int i = 0; i < 3; ++i) {
    node.submit_request(
        request("10.9.9.9"), [&](const MapReply&, sim::Duration) { ++answered; },
        [&](sim::Duration) { ++shed; });
  }
  sim.run();
  EXPECT_EQ(answered, 1);
  EXPECT_EQ(shed, 2);
  EXPECT_EQ(node.shed_submissions(), 2u);
  EXPECT_EQ(node.ramp_shed_submissions(), 2u);  // below the configured limit
}

TEST_F(AdmissionFixture, ZeroWindowOrUnboundedNodeNeverRamps) {
  node.begin_admission_ramp(milliseconds{0});
  EXPECT_FALSE(node.ramp_active());
  EXPECT_EQ(node.effective_admission_limit(), 4u);
}

}  // namespace
}  // namespace sda::lisp
