#include "lisp/map_server.hpp"

#include <gtest/gtest.h>

namespace sda::lisp {
namespace {

using net::Eid;
using net::Ipv4Address;
using net::Ipv4Prefix;
using net::Rloc;
using net::VnEid;
using net::VnId;

VnEid eid(std::uint32_t vn, const char* ip) {
  return VnEid{VnId{vn}, Eid{*Ipv4Address::parse(ip)}};
}

MappingRecord record(const char* rloc_ip, std::uint32_t ttl = 3600) {
  MappingRecord r;
  r.rlocs = {Rloc{*Ipv4Address::parse(rloc_ip)}};
  r.ttl_seconds = ttl;
  return r;
}

TEST(MapServer, RegisterAndResolve) {
  MapServer server;
  const auto outcome = server.register_mapping(eid(1, "10.1.0.5"), record("10.0.0.2"));
  EXPECT_TRUE(outcome.created);
  EXPECT_FALSE(outcome.moved);
  const auto resolved = server.resolve(eid(1, "10.1.0.5"));
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->primary_rloc(), *Ipv4Address::parse("10.0.0.2"));
  EXPECT_EQ(server.mapping_count(), 1u);
}

TEST(MapServer, ResolveUnknownIsNegative) {
  MapServer server;
  EXPECT_FALSE(server.resolve(eid(1, "10.1.0.9")).has_value());
}

TEST(MapServer, VnsAreIsolated) {
  MapServer server;
  server.register_mapping(eid(1, "10.1.0.5"), record("10.0.0.2"));
  EXPECT_FALSE(server.resolve(eid(2, "10.1.0.5")).has_value());
  EXPECT_EQ(server.mapping_count(VnId{1}), 1u);
  EXPECT_EQ(server.mapping_count(VnId{2}), 0u);
}

TEST(MapServer, ReRegisterSameRlocIsRefreshNotMove) {
  MapServer server;
  server.register_mapping(eid(1, "10.1.0.5"), record("10.0.0.2"));
  const auto outcome = server.register_mapping(eid(1, "10.1.0.5"), record("10.0.0.2"));
  EXPECT_FALSE(outcome.created);
  EXPECT_FALSE(outcome.moved);
  EXPECT_EQ(server.stats().moves, 0u);
}

TEST(MapServer, MoveDetectedAndCallbackFired) {
  MapServer server;
  VnEid moved_eid{};
  Ipv4Address old_rloc{};
  server.set_move_callback([&](const VnEid& e, Ipv4Address prev, const MappingRecord&) {
    moved_eid = e;
    old_rloc = prev;
  });
  server.register_mapping(eid(1, "10.1.0.5"), record("10.0.0.2"));
  const auto outcome = server.register_mapping(eid(1, "10.1.0.5"), record("10.0.0.3"));
  EXPECT_TRUE(outcome.moved);
  EXPECT_EQ(outcome.previous_rloc, *Ipv4Address::parse("10.0.0.2"));
  EXPECT_EQ(moved_eid, eid(1, "10.1.0.5"));
  EXPECT_EQ(old_rloc, *Ipv4Address::parse("10.0.0.2"));
  EXPECT_EQ(server.stats().moves, 1u);
}

TEST(MapServer, PublishFiredOnCreateMoveAndWithdraw) {
  MapServer server;
  int installs = 0, withdrawals = 0;
  server.set_publish_callback([&](const VnEid&, const MappingRecord* r) {
    if (r) {
      ++installs;
    } else {
      ++withdrawals;
    }
  });
  server.register_mapping(eid(1, "10.1.0.5"), record("10.0.0.2"));
  server.register_mapping(eid(1, "10.1.0.5"), record("10.0.0.2"));  // refresh: no publish
  server.register_mapping(eid(1, "10.1.0.5"), record("10.0.0.3"));  // move
  server.deregister(eid(1, "10.1.0.5"), *Ipv4Address::parse("10.0.0.3"));
  EXPECT_EQ(installs, 2);
  EXPECT_EQ(withdrawals, 1);
}

TEST(MapServer, DeregisterRequiresOwnership) {
  MapServer server;
  server.register_mapping(eid(1, "10.1.0.5"), record("10.0.0.2"));
  EXPECT_FALSE(server.deregister(eid(1, "10.1.0.5"), *Ipv4Address::parse("10.0.0.9")));
  EXPECT_EQ(server.mapping_count(), 1u);
  EXPECT_TRUE(server.deregister(eid(1, "10.1.0.5"), *Ipv4Address::parse("10.0.0.2")));
  EXPECT_EQ(server.mapping_count(), 0u);
}

TEST(MapServer, PrefixResolutionPrefersHostRoutes) {
  MapServer server;
  server.register_prefix(VnId{1}, *Ipv4Prefix::parse("0.0.0.0/0"), record("10.0.0.1"));
  server.register_mapping(eid(1, "10.1.0.5"), record("10.0.0.7"));
  EXPECT_EQ(server.resolve(eid(1, "10.1.0.5"))->primary_rloc(), *Ipv4Address::parse("10.0.0.7"));
  EXPECT_EQ(server.resolve(eid(1, "8.8.8.8"))->primary_rloc(), *Ipv4Address::parse("10.0.0.1"));
}

TEST(MapServer, AnswerBuildsPositiveAndNegativeReplies) {
  MapServer server;
  MappingRecord rec = record("10.0.0.2", 7200);
  rec.group = net::GroupId{33};
  server.register_mapping(eid(1, "10.1.0.5"), rec);

  MapRequest hit;
  hit.nonce = 5;
  hit.eid = eid(1, "10.1.0.5");
  const MapReply positive = server.answer(hit);
  EXPECT_EQ(positive.nonce, 5u);
  EXPECT_FALSE(positive.negative());
  EXPECT_EQ(positive.ttl_seconds, 7200u);
  EXPECT_EQ(positive.group, 33);

  MapRequest miss;
  miss.nonce = 6;
  miss.eid = eid(1, "10.9.9.9");
  const MapReply negative = server.answer(miss);
  EXPECT_TRUE(negative.negative());
  EXPECT_EQ(negative.action, MapReplyAction::NativelyForward);
  EXPECT_EQ(negative.ttl_seconds, 60u);
  EXPECT_EQ(server.stats().negative_replies, 1u);
  EXPECT_EQ(server.stats().requests, 2u);
}

TEST(MapServer, MacEidsSupported) {
  MapServer server;
  const VnEid mac_eid{VnId{1}, Eid{net::MacAddress::from_u64(0x02AB)}};
  server.register_mapping(mac_eid, record("10.0.0.4"));
  EXPECT_EQ(server.resolve(mac_eid)->primary_rloc(), *Ipv4Address::parse("10.0.0.4"));
}

TEST(MapServer, Ipv6EidsSupported) {
  MapServer server;
  const VnEid v6{VnId{1}, Eid{*net::Ipv6Address::parse("2001:db8::42")}};
  server.register_mapping(v6, record("10.0.0.4"));
  EXPECT_TRUE(server.resolve(v6).has_value());
  EXPECT_FALSE(
      server.resolve(VnEid{VnId{1}, Eid{*net::Ipv6Address::parse("2001:db8::43")}}).has_value());
}

TEST(MapServer, WalkVisitsHostMappingsOnly) {
  MapServer server;
  server.register_prefix(VnId{1}, *Ipv4Prefix::parse("0.0.0.0/0"), record("10.0.0.1"));
  server.register_mapping(eid(1, "10.1.0.5"), record("10.0.0.2"));
  server.register_mapping(eid(2, "10.1.0.6"), record("10.0.0.3"));
  std::vector<VnEid> seen;
  server.walk([&](const VnEid& e, const MappingRecord&) { seen.push_back(e); });
  ASSERT_EQ(seen.size(), 2u);  // the /0 prefix is infrastructure, not walked
  EXPECT_EQ(seen[0], eid(1, "10.1.0.5"));
  EXPECT_EQ(seen[1], eid(2, "10.1.0.6"));
}

TEST(MapServer, L2Bindings) {
  MapServer server;
  const auto ip_eid = eid(1, "10.1.0.5");
  const auto mac = net::MacAddress::from_u64(0x02CD);
  EXPECT_FALSE(server.lookup_mac(ip_eid).has_value());
  server.bind_l2(ip_eid, mac);
  EXPECT_EQ(server.lookup_mac(ip_eid), mac);
  EXPECT_TRUE(server.unbind_l2(ip_eid));
  EXPECT_FALSE(server.lookup_mac(ip_eid).has_value());
  EXPECT_FALSE(server.unbind_l2(ip_eid));
}

TEST(MapServer, ScalesToManyMappings) {
  MapServer server;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    server.register_mapping(VnEid{VnId{1}, Eid{Ipv4Address{0x0A010000u + i}}},
                            record(i % 2 ? "10.0.0.2" : "10.0.0.3"));
  }
  EXPECT_EQ(server.mapping_count(), 10000u);
  EXPECT_TRUE(server.resolve(VnEid{VnId{1}, Eid{Ipv4Address{0x0A010000u + 9999}}}).has_value());
}

}  // namespace
}  // namespace sda::lisp
