// Property test: the map cache against a brute-force reference model —
// TTL expiry, LRU eviction order, capacity bound, and positive-entry
// accounting must agree under a random operation mix.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>

#include "lisp/map_cache.hpp"
#include "sim/random.hpp"

namespace sda::lisp {
namespace {

using net::Eid;
using net::Ipv4Address;
using net::Rloc;
using net::VnEid;
using net::VnId;

VnEid eid_of(std::uint32_t i) { return VnEid{VnId{1}, Eid{Ipv4Address{0x0A000000u + i}}}; }

/// Brute-force reference: a recency-ordered list with TTLs.
struct ReferenceCache {
  struct Entry {
    VnEid eid;
    bool negative;
    Ipv4Address rloc;
    sim::SimTime expires;
  };
  std::size_t capacity;
  std::list<Entry> recency;  // front = most recent

  Entry* find(const VnEid& eid) {
    for (auto& e : recency) {
      if (e.eid == eid) return &e;
    }
    return nullptr;
  }

  const Entry* lookup(const VnEid& eid, sim::SimTime now) {
    for (auto it = recency.begin(); it != recency.end(); ++it) {
      if (it->eid != eid) continue;
      if (it->expires <= now) {
        recency.erase(it);
        return nullptr;
      }
      recency.splice(recency.begin(), recency, it);
      return &recency.front();
    }
    return nullptr;
  }

  void install(const VnEid& eid, bool negative, Ipv4Address rloc, sim::SimTime expires) {
    for (auto it = recency.begin(); it != recency.end(); ++it) {
      if (it->eid == eid) {
        recency.erase(it);
        break;
      }
    }
    recency.push_front(Entry{eid, negative, rloc, expires});
    while (capacity != 0 && recency.size() > capacity) recency.pop_back();
  }

  [[nodiscard]] std::size_t positive() const {
    return static_cast<std::size_t>(
        std::count_if(recency.begin(), recency.end(),
                      [](const Entry& e) { return !e.negative; }));
  }
};

struct CacheFuzzCase {
  std::uint64_t seed;
  std::size_t capacity;
  int operations;
};

class MapCacheProperty : public ::testing::TestWithParam<CacheFuzzCase> {};

TEST_P(MapCacheProperty, AgreesWithReferenceModel) {
  const auto param = GetParam();
  sim::Rng rng{param.seed};
  MapCache cache{param.capacity};
  ReferenceCache reference{param.capacity, {}};

  sim::SimTime now;
  for (int op = 0; op < param.operations; ++op) {
    now += sim::Duration{std::chrono::seconds{rng.next_below(20)}};
    const auto eid = eid_of(static_cast<std::uint32_t>(rng.next_below(24)));  // dense keys
    const int roll = static_cast<int>(rng.next_below(11));

    if (roll < 4) {  // install
      MapReply reply;
      reply.eid = eid;
      const bool negative = rng.chance(0.25);
      const auto rloc = Ipv4Address{0xC0A80000u + static_cast<std::uint32_t>(rng.next_below(4))};
      if (!negative) reply.rlocs = {Rloc{rloc}};
      reply.ttl_seconds = static_cast<std::uint32_t>(30 + rng.next_below(300));
      cache.install(eid, reply, now);
      reference.install(eid, negative, rloc, now + std::chrono::seconds{reply.ttl_seconds});
    } else if (roll < 8) {  // lookup
      const MapCacheEntry* got = cache.lookup(eid, now);
      const auto* expected = reference.lookup(eid, now);
      ASSERT_EQ(got != nullptr, expected != nullptr) << "op " << op;
      if (got) {
        EXPECT_EQ(got->negative(), expected->negative);
        if (!got->negative()) {
          EXPECT_EQ(got->primary_rloc(), expected->rloc);
        }
      }
    } else if (roll == 8) {  // invalidate
      const bool a = cache.invalidate(eid);
      bool b = false;
      for (auto it = reference.recency.begin(); it != reference.recency.end(); ++it) {
        if (it->eid == eid) {
          reference.recency.erase(it);
          b = true;
          break;
        }
      }
      EXPECT_EQ(a, b);
    } else if (roll == 9) {  // sweep
      cache.sweep(now);
      reference.recency.remove_if([now](const auto& e) { return e.expires <= now; });
    } else {  // invalidate_rloc (RLOC probe failure purge)
      const auto rloc = Ipv4Address{0xC0A80000u + static_cast<std::uint32_t>(rng.next_below(4))};
      const std::size_t purged = cache.invalidate_rloc(rloc);
      std::size_t expected_purged = 0;
      reference.recency.remove_if([rloc, &expected_purged](const auto& e) {
        if (e.negative || e.rloc != rloc) return false;
        ++expected_purged;
        return true;
      });
      EXPECT_EQ(purged, expected_purged) << "op " << op;
    }

    ASSERT_EQ(cache.size(), reference.recency.size()) << "op " << op;
    ASSERT_EQ(cache.positive_size(), reference.positive()) << "op " << op;
    if (param.capacity != 0) {
      ASSERT_LE(cache.size(), param.capacity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, MapCacheProperty,
                         ::testing::Values(CacheFuzzCase{1, 0, 3000},
                                           CacheFuzzCase{2, 8, 3000},
                                           CacheFuzzCase{3, 4, 3000},
                                           CacheFuzzCase{4, 16, 5000},
                                           CacheFuzzCase{5, 1, 2000}));

}  // namespace
}  // namespace sda::lisp
