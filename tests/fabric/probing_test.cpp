// RLOC probing (§5.1's "explicit probing"): edges detect dead RLOCs by
// probing instead of (or in addition to) watching the IGP.
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"

namespace sda::fabric {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;

constexpr VnId kVn{100};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

struct ProbingFixture : ::testing::Test {
  void SetUp() override {
    FabricConfig config;
    config.rloc_probing = true;
    config.probe_interval = std::chrono::seconds{5};
    config.l2_gateway = false;
    // Cripple the IGP watcher path so only probing can detect the outage.
    config.underlay.igp_convergence = std::chrono::hours{10};
    fabric = std::make_unique<SdaFabric>(sim, config);
    fabric->add_border("b0");
    for (const char* e : {"e0", "e1", "e2"}) {
      fabric->add_edge(e);
      fabric->link(e, "b0");
    }
    fabric->finalize();
    fabric->define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
    for (std::uint64_t i = 0; i < 2; ++i) {
      EndpointDefinition def;
      def.credential = "h" + std::to_string(i);
      def.secret = "pw";
      def.mac = mac(i);
      def.vn = kVn;
      def.group = GroupId{10};
      fabric->provision_endpoint(def);
    }
    fabric->connect_endpoint("h0", "e0", 1);
    fabric->connect_endpoint("h1", "e1", 1,
                             [this](const OnboardResult& r) { dst_ip = r.ip; });
    run_for(std::chrono::seconds{1});
  }

  void run_for(sim::Duration d) { sim.run_until(sim.now() + d); }

  sim::Simulator sim;
  std::unique_ptr<SdaFabric> fabric;
  net::Ipv4Address dst_ip;
};

TEST_F(ProbingFixture, ProbesRunOnlyWhileCacheIsPopulated) {
  auto& e0 = fabric->edge("e0");
  EXPECT_EQ(e0.counters().probes_sent, 0u);  // cache empty: no probes yet

  fabric->endpoint_send_udp(mac(0), dst_ip, 443, 100);
  run_for(std::chrono::seconds{12});
  EXPECT_GE(e0.counters().probes_sent, 2u);  // ~2 sweeps in 12 s at 5 s interval
  EXPECT_EQ(e0.counters().probes_failed, 0u);
}

TEST_F(ProbingFixture, ProbeFailurePurgesAndFallsBack) {
  fabric->endpoint_send_udp(mac(0), dst_ip, 443, 100);
  run_for(std::chrono::seconds{1});
  auto& e0 = fabric->edge("e0");
  ASSERT_EQ(e0.fib_size(), 1u);

  // e1 dies; the IGP watcher is effectively disabled in this fixture, so
  // only probes can notice.
  fabric->topology().set_node_state(fabric->edge("e1").config().node, false);
  fabric->underlay().topology_changed();
  run_for(std::chrono::seconds{12});
  EXPECT_GE(e0.counters().probes_failed, 1u);
  EXPECT_EQ(e0.fib_size(), 0u);
  EXPECT_GE(e0.counters().rloc_fallbacks, 1u);
}

TEST_F(ProbingFixture, ProbeRecoveryReenablesMappings) {
  fabric->endpoint_send_udp(mac(0), dst_ip, 443, 100);
  run_for(std::chrono::seconds{1});
  auto& e0 = fabric->edge("e0");

  const auto e1_node = fabric->edge("e1").config().node;
  fabric->topology().set_node_state(e1_node, false);
  fabric->underlay().topology_changed();
  run_for(std::chrono::seconds{12});
  ASSERT_EQ(e0.fib_size(), 0u);

  fabric->topology().set_node_state(e1_node, true);
  fabric->underlay().topology_changed();
  // Re-resolution happens on demand; the mapping is usable again because a
  // successful probe (or simply reachability) clears the down mark.
  int delivered = 0;
  fabric->set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime) {
        ++delivered;
      });
  fabric->endpoint_send_udp(mac(0), dst_ip, 443, 100);  // resolves again
  run_for(std::chrono::seconds{2});
  fabric->endpoint_send_udp(mac(0), dst_ip, 443, 100);
  run_for(std::chrono::seconds{2});
  EXPECT_GE(delivered, 1);
  EXPECT_EQ(e0.fib_size(), 1u);
}

}  // namespace
}  // namespace sda::fabric
