// Seeded determinism: two runs of the same scenario must produce
// bit-identical control-plane timelines. This is what makes every figure in
// the repo reproducible, and it pins the simulator's tie-break contract —
// the slot-recycling event loop must order same-timestamp events exactly
// like the original sequence-numbered heap did.
#include <gtest/gtest.h>

#include <string>

#include "fabric/fabric.hpp"

namespace sda::fabric {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;

constexpr VnId kVn{100};

struct RunResult {
  std::string flight_log;
  std::size_t executed_events = 0;
  sim::SimTime final_time;
  std::uint64_t delivered = 0;
};

RunResult run_scenario(std::uint64_t seed) {
  sim::Simulator sim;
  FabricConfig config;
  config.l2_gateway = false;
  config.seed = seed;
  SdaFabric fabric{sim, config};
  fabric.add_border("b0");
  fabric.add_edge("e0");
  fabric.add_edge("e1");
  fabric.add_edge("e2");
  fabric.link("e0", "b0");
  fabric.link("e1", "b0");
  fabric.link("e2", "b0");
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  fabric.provision_endpoint({"alice", "pw", MacAddress::from_u64(0x02AA), kVn, GroupId{10}});
  fabric.provision_endpoint({"bob", "pw", MacAddress::from_u64(0x02BB), kVn, GroupId{10}});

  net::Ipv4Address alice_ip;
  net::Ipv4Address bob_ip;
  fabric.connect_endpoint("alice", "e0", 1,
                          [&alice_ip](const OnboardResult& r) { alice_ip = r.ip; });
  fabric.connect_endpoint("bob", "e1", 1, [&bob_ip](const OnboardResult& r) { bob_ip = r.ip; });
  sim.run();

  // Traffic (cache miss + hits), a roam (SMR churn), then more traffic —
  // enough same-timestamp fan-out to exercise the tie-break everywhere.
  for (int i = 0; i < 4; ++i) {
    fabric.endpoint_send_udp(MacAddress::from_u64(0x02AA), bob_ip, 443, 200);
  }
  sim.run();
  fabric.roam_endpoint(MacAddress::from_u64(0x02BB), "e2", 2);
  sim.run();
  for (int i = 0; i < 4; ++i) {
    fabric.endpoint_send_udp(MacAddress::from_u64(0x02AA), bob_ip, 443, 200);
  }
  sim.run();

  RunResult result;
  result.flight_log = fabric.flight_recorder().dump();
  result.executed_events = sim.executed_events();
  result.final_time = sim.now();
  result.delivered = fabric.metrics().snapshot().counters.at("edge[0].encapsulated");
  return result;
}

TEST(Determinism, IdenticalSeedsProduceIdenticalTimelines) {
  const RunResult first = run_scenario(0x5DA);
  const RunResult second = run_scenario(0x5DA);
  EXPECT_EQ(first.executed_events, second.executed_events);
  EXPECT_EQ(first.final_time, second.final_time);
  EXPECT_EQ(first.delivered, second.delivered);
  // The full flight-recorder stream — every event, timestamp, and detail
  // string — must match byte for byte.
  EXPECT_EQ(first.flight_log, second.flight_log);
}

TEST(Determinism, DifferentSeedsStillDeliverSameTraffic) {
  // Seeds change jitter, not semantics: the packet counts must agree even
  // when the interleavings differ.
  const RunResult first = run_scenario(1);
  const RunResult second = run_scenario(2);
  EXPECT_EQ(first.delivered, second.delivered);
}

}  // namespace
}  // namespace sda::fabric
