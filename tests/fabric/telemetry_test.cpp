// Fabric-level telemetry: metrics registration, flight recorder wiring,
// inspect(include_telemetry), and end-to-end path traces over the real
// encap -> underlay -> decap -> two-stage SGACL pipeline.
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"
#include "fabric/inspect.hpp"

namespace sda::fabric {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;

constexpr VnId kVn{100};

class TelemetryFabric : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.l2_gateway = false;
    config_.seed = 42;
  }

  void build() {
    fabric_ = std::make_unique<SdaFabric>(sim_, config_);
    fabric_->add_border("b0");
    fabric_->add_edge("e0");
    fabric_->add_edge("e1");
    fabric_->link("e0", "b0");
    fabric_->link("e1", "b0");
    fabric_->finalize();
    fabric_->define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
    fabric_->provision_endpoint(
        {"alice", "pw", MacAddress::from_u64(0x02AA), kVn, GroupId{10}});
    fabric_->provision_endpoint(
        {"bob", "pw", MacAddress::from_u64(0x02BB), kVn, GroupId{20}});
    fabric_->connect_endpoint("alice", "e0", 1,
                              [this](const OnboardResult& r) { alice_ip_ = r.ip; });
    fabric_->connect_endpoint("bob", "e1", 1,
                              [this](const OnboardResult& r) { bob_ip_ = r.ip; });
    sim_.run();
  }

  sim::Simulator sim_;
  FabricConfig config_;
  std::unique_ptr<SdaFabric> fabric_;
  net::Ipv4Address alice_ip_;
  net::Ipv4Address bob_ip_;
};

TEST_F(TelemetryFabric, RegistersPerNodeMetricsAndOnboardHistograms) {
  build();
  const telemetry::Snapshot snap = fabric_->metrics().snapshot();
  // Per-edge hierarchical names exist for both edges.
  EXPECT_TRUE(snap.counters.count("edge[0].map_cache.misses"));
  EXPECT_TRUE(snap.counters.count("edge[1].registers_sent"));
  EXPECT_TRUE(snap.counters.count("map_server.requests"));
  EXPECT_TRUE(snap.gauges.count("edge[0].fib_size"));
  // Both onboards landed in the latency histogram.
  EXPECT_EQ(snap.histograms.at("fabric.onboard_ms").total, 2u);
  // Registrations actually happened and the probes see them.
  EXPECT_GE(snap.counters.at("edge[0].registers_sent"), 1u);
}

TEST_F(TelemetryFabric, FlightRecorderCapturesControlPlaneTimeline) {
  build();
  const auto events = fabric_->flight_recorder().events();
  ASSERT_FALSE(events.empty());
  bool saw_register = false, saw_onboard = false, saw_publish = false;
  for (const auto& event : events) {
    saw_register |= event.kind == telemetry::EventKind::MapRegister;
    saw_onboard |= event.kind == telemetry::EventKind::Onboard;
    saw_publish |= event.kind == telemetry::EventKind::Publish;
  }
  EXPECT_TRUE(saw_register);
  EXPECT_TRUE(saw_onboard);
  EXPECT_TRUE(saw_publish);
  // Per-node scoping: edge e0 has its own slice of the timeline.
  EXPECT_FALSE(fabric_->flight_recorder().for_node("e0").empty());
}

TEST_F(TelemetryFabric, DisabledTelemetryRecordsNothing) {
  config_.telemetry = false;
  build();
  EXPECT_EQ(fabric_->flight_recorder().recorded(), 0u);
  EXPECT_TRUE(fabric_->metrics().snapshot().empty());
}

TEST_F(TelemetryFabric, PathTraceDecomposesDeliveredFirstPacket) {
  build();
  const std::uint64_t id = fabric_->trace_flow(net::VnEid{kVn, net::Eid{alice_ip_}},
                                               net::VnEid{kVn, net::Eid{bob_ip_}});
  fabric_->endpoint_send_udp(MacAddress::from_u64(0x02AA), bob_ip_, 443, 200);
  sim_.run();

  const telemetry::PacketTrace* trace = fabric_->path_tracer().find_completed(id);
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->delivered);
  ASSERT_GE(trace->hops.size(), 4u);
  EXPECT_EQ(trace->hops.front().kind, telemetry::HopKind::Ingress);
  EXPECT_EQ(trace->hops.front().node, "e0");
  EXPECT_EQ(trace->hops.back().kind, telemetry::HopKind::Deliver);
  EXPECT_EQ(trace->hops.back().node, "e1");
  // The egress SGACL stage ran and permitted, and the frame crossed the
  // underlay: the per-packet pipeline is visible hop by hop.
  bool saw_permit = false, saw_transit = false, saw_decap = false;
  for (const auto& hop : trace->hops) {
    saw_permit |= hop.kind == telemetry::HopKind::SgaclPermit;
    saw_transit |= hop.kind == telemetry::HopKind::Transit;
    saw_decap |= hop.kind == telemetry::HopKind::Decap;
  }
  EXPECT_TRUE(saw_permit);
  EXPECT_TRUE(saw_transit);
  EXPECT_TRUE(saw_decap);
  // Hop timestamps are monotonic, so the latency decomposition is sound.
  for (std::size_t i = 1; i < trace->hops.size(); ++i) {
    EXPECT_GE(trace->hops[i].at, trace->hops[i - 1].at);
  }
  // The completion fed the fabric-wide first-packet histogram.
  const telemetry::Snapshot snap = fabric_->metrics().snapshot();
  EXPECT_EQ(snap.histograms.at("fabric.first_packet_us").total, 1u);
}

TEST_F(TelemetryFabric, PathTraceEndsAtEgressSgaclDeny) {
  build();
  // Two-stage pipeline: the ingress edge forwards on the cached mapping;
  // the egress edge evaluates the SGACL with the authoritative destination
  // group and drops there.
  fabric_->update_rule({kVn, GroupId{10}, GroupId{20}, policy::Action::Deny});
  sim_.run();
  const std::uint64_t id = fabric_->trace_flow(net::VnEid{kVn, net::Eid{alice_ip_}},
                                               net::VnEid{kVn, net::Eid{bob_ip_}});
  fabric_->endpoint_send_udp(MacAddress::from_u64(0x02AA), bob_ip_, 443, 200);
  sim_.run();

  const telemetry::PacketTrace* trace = fabric_->path_tracer().find_completed(id);
  ASSERT_NE(trace, nullptr);
  EXPECT_FALSE(trace->delivered);
  EXPECT_EQ(trace->hops.back().kind, telemetry::HopKind::SgaclDeny);
  EXPECT_EQ(trace->hops.back().node, "e1");  // enforced at egress, not ingress
  // The drop is attributable: the policy counter moved on the egress edge.
  EXPECT_GE(fabric_->metrics().snapshot().counters.at("edge[1].policy_drops"), 1u);
}

TEST_F(TelemetryFabric, InspectIncludesTelemetryOnRequest) {
  build();
  fabric_->endpoint_send_udp(MacAddress::from_u64(0x02AA), bob_ip_, 443, 200);
  sim_.run();

  const std::string plain = inspect(*fabric_);
  EXPECT_EQ(plain.find("telemetry:"), std::string::npos);

  InspectOptions options;
  options.include_telemetry = true;
  const std::string report = inspect(*fabric_, options);
  EXPECT_NE(report.find("telemetry:"), std::string::npos);
  EXPECT_NE(report.find("flight recorder:"), std::string::npos);
  EXPECT_NE(report.find("map-register"), std::string::npos);
}

TEST_F(TelemetryFabric, SnapshotDeltaIsolatesTrafficWindow) {
  build();
  const telemetry::Snapshot before = fabric_->metrics().snapshot();
  for (int i = 0; i < 5; ++i) {
    fabric_->endpoint_send_udp(MacAddress::from_u64(0x02AA), bob_ip_, 443, 200);
  }
  sim_.run();
  const telemetry::Snapshot delta = fabric_->metrics().snapshot().delta(before);
  EXPECT_EQ(delta.counters.at("edge[1].frames_delivered"), 5u);
  EXPECT_EQ(delta.counters.at("edge[1].policy_drops"), 0u);  // nothing denied in window
}

}  // namespace
}  // namespace sda::fabric
