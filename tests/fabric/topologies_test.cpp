#include "fabric/topologies.hpp"

#include <gtest/gtest.h>

#include "underlay/spf.hpp"

namespace sda::fabric {
namespace {

TEST(TieredCampus, BuildsAllTiersAndConnectivity) {
  sim::Simulator sim;
  SdaFabric fabric{sim, FabricConfig{}};
  TieredCampusSpec spec;
  spec.borders = 2;
  spec.distribution = 2;
  spec.edges = 6;
  const TieredCampus campus = build_tiered_campus(fabric, spec);
  fabric.finalize();

  EXPECT_EQ(campus.borders.size(), 2u);
  EXPECT_EQ(campus.distribution.size(), 2u);
  EXPECT_EQ(campus.edges.size(), 6u);
  EXPECT_EQ(fabric.edge_names().size(), 6u);
  EXPECT_EQ(fabric.border_names().size(), 2u);

  // Every edge reaches every border and every other edge.
  for (const auto& edge : campus.edges) {
    const auto node = fabric.edge(edge).config().node;
    for (const auto& border : campus.borders) {
      EXPECT_TRUE(fabric.underlay().reachable(node, fabric.border(border).rloc()));
    }
    for (const auto& other : campus.edges) {
      if (other == edge) continue;
      EXPECT_TRUE(fabric.underlay().reachable(node, fabric.edge(other).rloc()));
    }
  }
}

TEST(TieredCampus, DualHomingGivesEcmpTowardsBorders) {
  sim::Simulator sim;
  SdaFabric fabric{sim, FabricConfig{}};
  TieredCampusSpec spec;
  spec.borders = 1;
  spec.distribution = 2;
  spec.edges = 4;
  const TieredCampus campus = build_tiered_campus(fabric, spec);
  fabric.finalize();

  const auto edge_node = fabric.edge(campus.edges[0]).config().node;
  const auto border_node =
      *fabric.topology().node_by_loopback(fabric.border(campus.borders[0]).rloc());
  const auto& table = fabric.underlay().table(edge_node);
  const underlay::SpfRoute* route = table.route(border_node);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hops.size(), 2u);  // both distribution switches
}

TEST(TieredCampus, SurvivesDistributionSwitchLoss) {
  sim::Simulator sim;
  SdaFabric fabric{sim, FabricConfig{}};
  TieredCampusSpec spec;
  spec.borders = 2;
  spec.distribution = 2;
  spec.edges = 4;
  const TieredCampus campus = build_tiered_campus(fabric, spec);
  fabric.finalize();

  // Fail edge-0's primary uplink; the dual-homed alternate must carry on.
  fabric.set_link_state(campus.edges[0], campus.distribution[0], false);
  sim.run();
  const auto edge_node = fabric.edge(campus.edges[0]).config().node;
  for (const auto& border : campus.borders) {
    EXPECT_TRUE(fabric.underlay().reachable(edge_node, fabric.border(border).rloc()));
  }
}

TEST(TieredCampus, CollapsedCoreWithoutDistribution) {
  sim::Simulator sim;
  SdaFabric fabric{sim, FabricConfig{}};
  TieredCampusSpec spec;
  spec.borders = 2;
  spec.distribution = 0;
  spec.edges = 3;
  const TieredCampus campus = build_tiered_campus(fabric, spec);
  fabric.finalize();
  const auto edge_node = fabric.edge(campus.edges[0]).config().node;
  for (const auto& border : campus.borders) {
    EXPECT_TRUE(fabric.underlay().reachable(edge_node, fabric.border(border).rloc()));
  }
}

TEST(TieredCampus, PrefixNamespacesNodes) {
  sim::Simulator sim;
  SdaFabric fabric{sim, FabricConfig{}};
  TieredCampusSpec spec;
  spec.prefix = "bldgA-";
  spec.borders = 1;
  spec.edges = 2;
  const TieredCampus campus = build_tiered_campus(fabric, spec);
  EXPECT_EQ(campus.borders[0], "bldgA-border-0");
  EXPECT_EQ(campus.edges[1], "bldgA-edge-1");
}

TEST(TieredCampus, RejectsEmptySpecs) {
  sim::Simulator sim;
  SdaFabric fabric{sim, FabricConfig{}};
  TieredCampusSpec spec;
  spec.borders = 0;
  EXPECT_THROW(build_tiered_campus(fabric, spec), std::invalid_argument);
}

TEST(TieredCampus, EndToEndTrafficWorks) {
  sim::Simulator sim;
  SdaFabric fabric{sim, FabricConfig{}};
  TieredCampusSpec spec;
  const TieredCampus campus = build_tiered_campus(fabric, spec);
  fabric.finalize();
  fabric.define_vn({net::VnId{100}, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  for (int i = 0; i < 2; ++i) {
    EndpointDefinition def;
    def.credential = "h" + std::to_string(i);
    def.secret = "pw";
    def.mac = net::MacAddress::from_u64(0x02A0 + static_cast<unsigned>(i));
    def.vn = net::VnId{100};
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
  }
  net::Ipv4Address dst;
  fabric.connect_endpoint("h0", campus.edges[0], 1);
  fabric.connect_endpoint("h1", campus.edges[3], 1,
                          [&](const OnboardResult& r) { dst = r.ip; });
  sim.run();
  int delivered = 0;
  fabric.set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime) {
        ++delivered;
      });
  fabric.endpoint_send_udp(net::MacAddress::from_u64(0x02A0), dst, 443, 100);
  sim.run();
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace sda::fabric
