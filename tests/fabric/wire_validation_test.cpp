// End-to-end wire-format validation: with validate_wire_format on, every
// data frame the fabric moves is serialized to real VXLAN-GPO bytes and
// decoded back. A whole traffic mix (v4, v6, ARP, hairpins, stale
// forwards, policy drops) running without throwing proves the structured
// packet model and the codecs agree everywhere.
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"

namespace sda::fabric {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;

constexpr VnId kVn{100};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

TEST(WireValidation, FullTrafficMixSurvivesRoundTrips) {
  sim::Simulator sim;
  FabricConfig config;
  config.validate_wire_format = true;
  config.l2_gateway = true;
  SdaFabric fabric{sim, config};
  fabric.add_border("b0");
  fabric.add_edge("e0");
  fabric.add_edge("e1");
  fabric.add_edge("e2");
  for (const char* e : {"e0", "e1", "e2"}) fabric.link(e, "b0");
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16"),
                    *net::Ipv6Prefix::parse("2001:db8:100::/64")});
  fabric.set_rule({kVn, GroupId{10}, GroupId{20}, policy::Action::Deny});
  fabric.add_external_prefix(kVn, *net::Ipv4Prefix::parse("0.0.0.0/0"));

  std::vector<OnboardResult> hosts(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EndpointDefinition def;
    def.credential = "h" + std::to_string(i);
    def.secret = "pw";
    def.mac = mac(i);
    def.vn = kVn;
    def.group = i == 3 ? GroupId{20} : GroupId{10};
    def.l2_services = true;
    fabric.provision_endpoint(def);
    fabric.connect_endpoint(def.credential, "e" + std::to_string(i % 3), 1,
                            [&hosts, i](const OnboardResult& r) { hosts[i] = r; });
  }
  sim.run();
  for (const auto& h : hosts) ASSERT_TRUE(h.success);

  int delivered = 0;
  fabric.set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime) {
        ++delivered;
      });

  EXPECT_NO_THROW({
    // IPv4 cross-edge (miss -> default route -> hairpin, then direct).
    fabric.endpoint_send_udp(mac(0), hosts[1].ip, 443, 700);
    // IPv6 cross-edge.
    fabric.endpoint_send_udp6(mac(0), *hosts[2].ipv6, 443, 700);
    // ARP via the L2 gateway (broadcast -> unicast conversion).
    fabric.endpoint_send_arp(mac(0), hosts[1].ip);
    // Policy-denied flow (crosses the fabric, dropped on egress).
    fabric.endpoint_send_udp(mac(0), hosts[3].ip, 443, 100);
    // External exit + inbound return.
    fabric.endpoint_send_udp(mac(1), *net::Ipv4Address::parse("198.51.100.1"), 53, 64);
    fabric.external_send_udp("b0", kVn, *net::Ipv4Address::parse("8.8.8.8"), hosts[0].ip, 64);
    sim.run();
    // Stale-sender path: roam h1 then let h0 use its stale entry.
    fabric.roam_endpoint(mac(1), "e2", 2);
    sim.run();
    fabric.endpoint_send_udp(mac(0), hosts[1].ip, 443, 700);
    sim.run();
  });
  EXPECT_GE(delivered, 5);
}

}  // namespace
}  // namespace sda::fabric
