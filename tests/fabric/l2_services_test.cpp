// L2 services (§3.5): MAC-keyed mappings, ARP broadcast absorption and
// unicast conversion through the L2 gateway, and DHCP-backed onboarding.
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"

namespace sda::fabric {
namespace {

using net::GroupId;
using net::Ipv4Address;
using net::MacAddress;
using net::VnId;

constexpr VnId kVn{100};
constexpr GroupId kGroup{10};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

struct L2Fixture : ::testing::Test {
  void SetUp() override {
    FabricConfig config;
    config.l2_gateway = true;
    fabric = std::make_unique<SdaFabric>(sim, config);
    fabric->add_border("b0");
    fabric->add_edge("e0");
    fabric->add_edge("e1");
    fabric->link("e0", "b0");
    fabric->link("e1", "b0");
    fabric->finalize();
    fabric->define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

    for (std::uint64_t i = 1; i <= 2; ++i) {
      EndpointDefinition def;
      def.credential = "host-" + std::to_string(i);
      def.secret = "pw";
      def.mac = mac(i);
      def.vn = kVn;
      def.group = kGroup;
      def.l2_services = true;  // register MAC EIDs + IP->MAC bindings
      fabric->provision_endpoint(def);
    }

    fabric->set_delivery_listener([this](const dataplane::AttachedEndpoint& e,
                                         const net::OverlayFrame& f, sim::SimTime) {
      if (f.is_arp()) {
        arp_deliveries.emplace_back(e.credential, f.arp());
      } else {
        deliveries.push_back(e.credential);
      }
    });
  }

  OnboardResult connect(const std::string& credential, const std::string& edge) {
    OnboardResult result;
    fabric->connect_endpoint(credential, edge, 1,
                             [&](const OnboardResult& r) { result = r; });
    sim.run();
    return result;
  }

  sim::Simulator sim;
  std::unique_ptr<SdaFabric> fabric;
  std::vector<std::string> deliveries;
  std::vector<std::pair<std::string, net::ArpPacket>> arp_deliveries;
};

TEST_F(L2Fixture, OnboardingRegistersMacEidAndL2Binding) {
  const auto r = connect("host-1", "e0");
  ASSERT_TRUE(r.success);
  // IP + MAC mappings in the routing server.
  EXPECT_EQ(fabric->map_server().mapping_count(kVn), 2u);
  EXPECT_EQ(fabric->map_server().lookup_mac(net::VnEid{kVn, net::Eid{r.ip}}), mac(1));
  // MAC EID resolvable.
  EXPECT_TRUE(
      fabric->map_server().resolve(net::VnEid{kVn, net::Eid{mac(1)}}).has_value());
}

TEST_F(L2Fixture, ArpRequestConvertedToUnicastAcrossEdges) {
  connect("host-1", "e0");
  const auto h2 = connect("host-2", "e1");

  // host-1 ARPs for host-2's IP: broadcast absorbed at e0, converted to a
  // unicast frame towards e1, delivered to host-2 only.
  EXPECT_TRUE(fabric->endpoint_send_arp(mac(1), h2.ip));
  sim.run();
  ASSERT_EQ(arp_deliveries.size(), 1u);
  EXPECT_EQ(arp_deliveries[0].first, "host-2");
  EXPECT_EQ(arp_deliveries[0].second.target_mac, mac(2));
  EXPECT_EQ(arp_deliveries[0].second.op, net::ArpPacket::Op::Request);
  // No broadcast flooding: exactly one delivery fabric-wide.
  EXPECT_TRUE(deliveries.empty());
}

TEST_F(L2Fixture, ArpForSameEdgeNeighbourAnsweredLocally) {
  connect("host-1", "e0");
  const auto h2 = connect("host-2", "e0");
  fabric->endpoint_send_arp(mac(1), h2.ip);
  sim.run();
  ASSERT_EQ(arp_deliveries.size(), 1u);
  EXPECT_EQ(arp_deliveries[0].first, "host-2");
  // Stays on the edge: nothing was encapsulated for this ARP.
  EXPECT_EQ(fabric->edge("e0").counters().encapsulated, 0u);
}

TEST_F(L2Fixture, ArpForUnknownIpSilentlyAbsorbed) {
  connect("host-1", "e0");
  fabric->endpoint_send_arp(mac(1), *Ipv4Address::parse("10.100.9.9"));
  sim.run();
  EXPECT_TRUE(arp_deliveries.empty());
  // Absorbed, not flooded, not defaulted to border.
  EXPECT_EQ(fabric->edge("e0").counters().default_routed, 0u);
}

TEST_F(L2Fixture, ArpReplyRidesL2PipelineBack) {
  const auto h1 = connect("host-1", "e0");
  const auto h2 = connect("host-2", "e1");
  fabric->endpoint_send_arp(mac(1), h2.ip);
  sim.run();
  ASSERT_EQ(arp_deliveries.size(), 1u);

  // host-2 answers with a unicast ARP reply to host-1's MAC.
  net::OverlayFrame reply;
  reply.source_mac = mac(2);
  reply.destination_mac = mac(1);
  net::ArpPacket arp;
  arp.op = net::ArpPacket::Op::Reply;
  arp.sender_mac = mac(2);
  arp.sender_ip = h2.ip;
  arp.target_mac = mac(1);
  arp.target_ip = h1.ip;
  reply.l3 = arp;
  fabric->edge("e1").endpoint_transmit(mac(2), reply);
  sim.run();
  ASSERT_EQ(arp_deliveries.size(), 2u);
  EXPECT_EQ(arp_deliveries[1].first, "host-1");
  EXPECT_EQ(arp_deliveries[1].second.op, net::ArpPacket::Op::Reply);
}

TEST_F(L2Fixture, GatewayDisabledAbsorbsBroadcastEntirely) {
  sim::Simulator sim2;
  FabricConfig config;
  config.l2_gateway = false;
  SdaFabric no_gw{sim2, config};
  no_gw.add_border("b0");
  no_gw.add_edge("e0");
  no_gw.link("e0", "b0");
  no_gw.finalize();
  no_gw.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  EndpointDefinition def;
  def.credential = "h";
  def.secret = "pw";
  def.mac = mac(5);
  def.vn = kVn;
  def.group = kGroup;
  no_gw.provision_endpoint(def);
  bool done = false;
  no_gw.connect_endpoint("h", "e0", 1, [&](const OnboardResult&) { done = true; });
  sim2.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(no_gw.endpoint_send_arp(mac(5), *Ipv4Address::parse("10.100.0.9")));
  sim2.run();
  EXPECT_EQ(no_gw.edge("e0").counters().encapsulated, 0u);
}

}  // namespace
}  // namespace sda::fabric
