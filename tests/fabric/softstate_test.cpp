// LISP soft-state registrations: server-side TTL expiry and edge-side
// periodic refresh keeping live endpoints registered.
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"

namespace sda::fabric {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;

constexpr VnId kVn{100};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

std::unique_ptr<SdaFabric> make_fabric(sim::Simulator& sim, std::uint32_t ttl_seconds) {
  FabricConfig config;
  config.register_ttl_seconds = ttl_seconds;
  config.l2_gateway = false;
  auto fabric = std::make_unique<SdaFabric>(sim, config);
  fabric->add_border("b0");
  fabric->add_edge("e0");
  fabric->link("e0", "b0");
  fabric->finalize();
  fabric->define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  EndpointDefinition def;
  def.credential = "h0";
  def.secret = "pw";
  def.mac = mac(0);
  def.vn = kVn;
  def.group = GroupId{10};
  fabric->provision_endpoint(def);
  return fabric;
}

TEST(SoftState, StaleRegistrationsExpireAndPublishWithdrawals) {
  sim::Simulator sim;
  auto fabric = make_fabric(sim, 60);  // 1-minute TTL
  fabric->connect_endpoint("h0", "e0", 1);
  sim.run();
  ASSERT_EQ(fabric->map_server().mapping_count(kVn), 1u);
  ASSERT_EQ(fabric->border("b0").fib_size(), 1u);

  // No refresh configured: past the TTL the registration ages out and the
  // border hears the withdrawal via pub/sub.
  sim.run_until(sim.now() + std::chrono::seconds{90});
  EXPECT_EQ(fabric->map_server().expire_registrations(sim.now()), 1u);
  EXPECT_EQ(fabric->map_server().mapping_count(kVn), 0u);
  EXPECT_EQ(fabric->map_server().stats().expirations, 1u);
  sim.run();
  EXPECT_EQ(fabric->border("b0").fib_size(), 0u);
}

TEST(SoftState, FreshRegistrationsSurviveSweep) {
  sim::Simulator sim;
  auto fabric = make_fabric(sim, 3600);
  fabric->connect_endpoint("h0", "e0", 1);
  sim.run();
  sim.run_until(sim.now() + std::chrono::seconds{90});
  EXPECT_EQ(fabric->map_server().expire_registrations(sim.now()), 0u);
  EXPECT_EQ(fabric->map_server().mapping_count(kVn), 1u);
}

TEST(SoftState, EdgeRefreshKeepsRegistrationAlive) {
  sim::Simulator sim;
  FabricConfig config;
  config.register_ttl_seconds = 60;
  config.register_refresh_interval = std::chrono::seconds{30};  // TTL/2, like a real xTR
  config.l2_gateway = false;
  SdaFabric fabric{sim, config};
  fabric.add_border("b0");
  fabric.add_edge("e0");
  fabric.link("e0", "b0");
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  EndpointDefinition def;
  def.credential = "h0";
  def.secret = "pw";
  def.mac = mac(0);
  def.vn = kVn;
  def.group = GroupId{10};
  fabric.provision_endpoint(def);
  fabric.connect_endpoint("h0", "e0", 1);
  sim.run_until(sim.now() + std::chrono::seconds{200});

  // Several refresh rounds have passed; the registration never ages out.
  EXPECT_EQ(fabric.map_server().expire_registrations(sim.now()), 0u);
  EXPECT_EQ(fabric.map_server().mapping_count(kVn), 1u);
  EXPECT_GT(fabric.edge("e0").counters().registers_sent, 3u);

  // Once the endpoint leaves, the refresh timer disarms and the stale
  // registration (if any remained) would age out.
  fabric.disconnect_endpoint(mac(0));
  sim.run_until(sim.now() + std::chrono::seconds{120});
  EXPECT_EQ(fabric.map_server().mapping_count(kVn), 0u);
}

}  // namespace
}  // namespace sda::fabric
