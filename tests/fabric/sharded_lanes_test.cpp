#include "fabric/lanes.hpp"

#include <gtest/gtest.h>

#include <string>

#include "fabric/fabric.hpp"
#include "fabric/sharding.hpp"

namespace sda::fabric {
namespace {

LaneFabricConfig small_config(std::size_t workers) {
  LaneFabricConfig cfg;
  cfg.lanes = 4;
  cfg.workers = workers;
  cfg.edges_per_lane = 8;
  cfg.hops_per_packet = 48;
  cfg.packets_per_edge = 2;
  cfg.cross_lane_fraction = 0.4;  // force heavy cross-shard traffic
  cfg.seed = 12345;
  cfg.record_log = true;
  return cfg;
}

TEST(LaneFabricTest, PlanHomesLanesAndDerivesLookahead) {
  LaneFabric fabric(small_config(1));
  const ShardPlan& plan = fabric.plan();
  EXPECT_EQ(plan.shards, 4u);
  // 4 hubs fully meshed: 6 cross-lane links, and nothing else crosses.
  EXPECT_EQ(plan.cross_links, 6u);
  EXPECT_EQ(plan.lookahead, std::chrono::microseconds{200});
  for (const auto& members : plan.members) {
    EXPECT_EQ(members.size(), 9u);  // hub + 8 edges
  }
  EXPECT_EQ(fabric.core().lookahead(), plan.lookahead);
}

TEST(LaneFabricTest, TrafficCrossesShardsAndStaysConservative) {
  LaneFabric fabric(small_config(2));
  fabric.run();
  // 64 packets x 49 arrivals each (48 hops + the injection arrival).
  EXPECT_EQ(fabric.hops_delivered(), 64u * 49u);
  EXPECT_GT(fabric.cross_lane_posts(), 0u);
  // The lookahead bound is honored: nothing ever arrived below a shard's
  // clock, so the conservative window never clamped an event forward.
  EXPECT_EQ(fabric.late_posts(), 0u);
}

// The tentpole oracle: a seeded run must produce a byte-identical flight
// log no matter how many workers execute it.
TEST(LaneFabricDeterminismTest, FlightLogByteIdenticalAcrossWorkerCounts) {
  LaneFabric w1(small_config(1));
  LaneFabric w4(small_config(4));
  w1.run();
  w4.run();
  ASSERT_GT(w1.cross_lane_posts(), 0u);  // the comparison must be non-trivial
  EXPECT_EQ(w1.log_digest(), w4.log_digest());
  const std::string log1 = w1.flight_log();
  const std::string log4 = w4.flight_log();
  ASSERT_FALSE(log1.empty());
  EXPECT_EQ(log1, log4);
}

TEST(LaneFabricDeterminismTest, HoldsUnderFaultInjection) {
  auto chaos = [](std::size_t workers) {
    LaneFabricConfig cfg = small_config(workers);
    cfg.fault_drop_per_million = 50'000;  // 5% in-transit drops
    cfg.record_log = true;
    return cfg;
  };
  LaneFabric w1(chaos(1));
  LaneFabric w4(chaos(4));
  w1.run();
  w4.run();
  EXPECT_GT(w1.fault_drops(), 0u);
  EXPECT_EQ(w1.fault_drops(), w4.fault_drops());
  EXPECT_EQ(w1.hops_delivered(), w4.hops_delivered());
  EXPECT_EQ(w1.flight_log(), w4.flight_log());
}

TEST(LaneFabricTest, MergedMetricsFoldAcrossLanes) {
  LaneFabric fabric(small_config(2));
  fabric.run();
  const telemetry::Snapshot merged = fabric.merged_metrics();
  ASSERT_TRUE(merged.counters.contains("lane.delivered"));
  EXPECT_EQ(merged.counters.at("lane.delivered"), fabric.hops_delivered());
  ASSERT_TRUE(merged.counters.contains("underlay.remote_posts"));
  EXPECT_EQ(merged.counters.at("underlay.remote_posts"), fabric.cross_lane_posts());
  ASSERT_TRUE(merged.counters.contains("map_cache.hits"));
  EXPECT_GT(merged.counters.at("map_cache.hits"), 0u);
}

TEST(ShardPlanTest, EdgeGroupPlanHomesControlToLaneZero) {
  underlay::Topology topo;
  std::vector<underlay::NodeId> edges;
  const underlay::NodeId border =
      topo.add_node("border", net::Ipv4Address{0x0B000001u});
  for (std::uint32_t i = 0; i < 8; ++i) {
    const underlay::NodeId e =
        topo.add_node("edge" + std::to_string(i), net::Ipv4Address{0x0B000100u + i});
    topo.add_link(border, e, std::chrono::microseconds{30});
    edges.push_back(e);
  }
  const ShardPlan plan = compute_edge_group_plan(topo, 4, edges, {border});
  EXPECT_EQ(plan.shards, 4u);
  EXPECT_EQ(plan.shard_of(border), 0u);
  // Contiguous construction-order distribution: first two edges on lane 0.
  EXPECT_EQ(plan.shard_of(edges[0]), 0u);
  EXPECT_EQ(plan.shard_of(edges[1]), 0u);
  EXPECT_EQ(plan.shard_of(edges[7]), 3u);
  // Edges on lanes 1..3 reach the border over a cross-lane link.
  EXPECT_EQ(plan.cross_links, 6u);
  EXPECT_EQ(plan.lookahead, std::chrono::microseconds{30});
}

TEST(ShardPlanTest, SdaFabricComputesPlanAtFinalize) {
  sim::Simulator sim;
  FabricConfig cfg;
  cfg.sharding.workers = 2;  // lanes defaults to one per worker
  SdaFabric fabric(sim, cfg);
  fabric.add_border("b0");
  for (int i = 0; i < 4; ++i) {
    fabric.add_edge("e" + std::to_string(i));
    fabric.link("e" + std::to_string(i), "b0");
  }
  fabric.finalize();
  const ShardPlan& plan = fabric.shard_plan();
  EXPECT_EQ(plan.shards, 2u);
  EXPECT_EQ(plan.node_shard.size(), fabric.topology().node_count());
  // The border (control leg) homes with the first edge group on lane 0,
  // so only the second group's uplinks cross lanes.
  EXPECT_GT(plan.cross_links, 0u);
  EXPECT_GT(plan.lookahead.count(), 0);
  // Defaults stay trivially single-shard.
  sim::Simulator sim2;
  SdaFabric plain(sim2, FabricConfig{});
  plain.add_border("b0");
  plain.add_edge("e0");
  plain.link("e0", "b0");
  plain.finalize();
  EXPECT_EQ(plain.shard_plan().shards, 1u);
  EXPECT_EQ(plain.shard_plan().cross_links, 0u);
}

TEST(ShardPlanTest, SingleLanePlanIsTrivial) {
  underlay::Topology topo;
  const underlay::NodeId a = topo.add_node("a", net::Ipv4Address{0x0C000001u});
  const underlay::NodeId b = topo.add_node("b", net::Ipv4Address{0x0C000002u});
  topo.add_link(a, b, std::chrono::microseconds{10});
  const ShardPlan plan = compute_shard_plan(topo, {{a, b}});
  EXPECT_EQ(plan.shards, 1u);
  EXPECT_EQ(plan.cross_links, 0u);
  EXPECT_EQ(plan.lookahead.count(), 0);
}

}  // namespace
}  // namespace sda::fabric
