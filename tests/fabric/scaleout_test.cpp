// Horizontal routing-server scale-out (§4.1): edges are grouped and each
// group queries its own routing server; registrations fan out to every
// server so all replicas stay complete.
#include <gtest/gtest.h>

#include <array>

#include "fabric/fabric.hpp"

namespace sda::fabric {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;

constexpr VnId kVn{100};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

struct ScaleoutFixture : ::testing::Test {
  void SetUp() override {
    FabricConfig config;
    config.routing_servers = 2;
    fabric = std::make_unique<SdaFabric>(sim, config);
    fabric->add_border("b0");
    fabric->add_border("b1");
    for (int e = 0; e < 4; ++e) {
      const std::string name = "e" + std::to_string(e);
      fabric->add_edge(name);
      fabric->link(name, "b0");
      fabric->link(name, "b1");
    }
    fabric->link("b0", "b1");
    fabric->finalize();
    fabric->define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

    for (std::uint64_t i = 0; i < 8; ++i) {
      EndpointDefinition def;
      def.credential = "h" + std::to_string(i);
      def.secret = "pw";
      def.mac = mac(i);
      def.vn = kVn;
      def.group = GroupId{10};
      fabric->provision_endpoint(def);
      fabric->connect_endpoint(def.credential, "e" + std::to_string(i % 4), 1,
                               [this, i](const OnboardResult& r) {
                                 if (r.success) ips[i] = r.ip;
                               });
    }
    sim.run();
  }

  sim::Simulator sim;
  std::unique_ptr<SdaFabric> fabric;
  std::array<net::Ipv4Address, 8> ips{};
};

TEST_F(ScaleoutFixture, TwoServersInstantiated) {
  EXPECT_EQ(fabric->routing_server_count(), 2u);
}

TEST_F(ScaleoutFixture, RegistrationsReplicateToAllServers) {
  for (const auto ip : ips) ASSERT_FALSE(ip.is_unspecified());
  EXPECT_EQ(fabric->map_server_replica(0).mapping_count(kVn), 8u);
  EXPECT_EQ(fabric->map_server_replica(1).mapping_count(kVn), 8u);
  // Replicas agree on every mapping.
  for (const auto ip : ips) {
    const net::VnEid eid{kVn, net::Eid{ip}};
    const auto a = fabric->map_server_replica(0).resolve(eid);
    const auto b = fabric->map_server_replica(1).resolve(eid);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->primary_rloc(), b->primary_rloc());
  }
}

TEST_F(ScaleoutFixture, RequestLoadSplitsAcrossServers) {
  // Every edge resolves every remote destination once.
  for (std::uint64_t src = 0; src < 8; ++src) {
    for (const auto dst : ips) {
      fabric->endpoint_send_udp(mac(src), dst, 443, 64);
    }
  }
  sim.run();
  const auto& s0 = fabric->map_server_replica(0).stats();
  const auto& s1 = fabric->map_server_replica(1).stats();
  EXPECT_GT(s0.requests, 0u);
  EXPECT_GT(s1.requests, 0u);
  // Round-robin edge grouping: the two halves see similar load.
  const double ratio = static_cast<double>(s0.requests) /
                       static_cast<double>(std::max<std::uint64_t>(s1.requests, 1));
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

TEST_F(ScaleoutFixture, TrafficStillFlowsEndToEnd) {
  int delivered = 0;
  fabric->set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime) {
        ++delivered;
      });
  fabric->endpoint_send_udp(mac(0), ips[5], 443, 64);  // h0 (e0) -> h5 (e1)
  fabric->endpoint_send_udp(mac(1), ips[6], 443, 64);  // h1 (e1) -> h6 (e2)
  sim.run();
  EXPECT_EQ(delivered, 2);
}

TEST_F(ScaleoutFixture, MobilityUpdatesBothReplicas) {
  fabric->roam_endpoint(mac(0), "e3", 2);
  sim.run();
  const net::VnEid eid{kVn, net::Eid{ips[0]}};
  EXPECT_EQ(fabric->map_server_replica(0).resolve(eid)->primary_rloc(),
            fabric->edge("e3").rloc());
  EXPECT_EQ(fabric->map_server_replica(1).resolve(eid)->primary_rloc(),
            fabric->edge("e3").rloc());
}

}  // namespace
}  // namespace sda::fabric
