#include "fabric/inspect.hpp"

#include <gtest/gtest.h>

namespace sda::fabric {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;

TEST(Inspect, ReportsRoutersServersAndMappings) {
  sim::Simulator sim;
  SdaFabric fabric{sim, FabricConfig{}};
  fabric.add_border("b0");
  fabric.add_edge("e0");
  fabric.link("e0", "b0");
  fabric.finalize();
  fabric.define_vn({VnId{100}, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  fabric.provision_endpoint(
      {"alice", "pw", MacAddress::from_u64(0x02AA), VnId{100}, GroupId{10}});
  net::Ipv4Address ip;
  fabric.connect_endpoint("alice", "e0", 1, [&](const OnboardResult& r) { ip = r.ip; });
  sim.run();

  const std::string report = inspect(fabric);
  EXPECT_NE(report.find("b0"), std::string::npos);
  EXPECT_NE(report.find("e0"), std::string::npos);
  EXPECT_NE(report.find("routing server: 1 endpoint mappings"), std::string::npos);
  EXPECT_NE(report.find("policy server: 1 endpoints"), std::string::npos);
  EXPECT_NE(report.find("1 accepts"), std::string::npos);
  // Full mapping dump only on request.
  EXPECT_EQ(report.find(ip.to_string() + " ->"), std::string::npos);

  InspectOptions options;
  options.include_mappings = true;
  const std::string full = inspect(fabric, options);
  EXPECT_NE(full.find(ip.to_string()), std::string::npos);
}

TEST(Inspect, AssuranceSectionOnRequest) {
  sim::Simulator sim;
  FabricConfig config;
  config.causal_tracing = true;
  SdaFabric fabric{sim, config};
  fabric.add_border("b0");
  fabric.add_edge("e0");
  fabric.link("e0", "b0");
  fabric.finalize();
  fabric.define_vn({VnId{100}, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  fabric.provision_endpoint(
      {"alice", "pw", MacAddress::from_u64(0x02AA), VnId{100}, GroupId{10}});
  fabric.connect_endpoint("alice", "e0", 1, [](const OnboardResult&) {});
  sim.run();

  // Off by default.
  EXPECT_EQ(inspect(fabric).find("assurance:"), std::string::npos);

  InspectOptions options;
  options.include_assurance = true;
  const std::string report = inspect(fabric, options);
  EXPECT_NE(report.find("assurance:"), std::string::npos);
  EXPECT_NE(report.find("all PASS"), std::string::npos) << report;
  EXPECT_NE(report.find("[PASS] no-pending-trace-leak"), std::string::npos) << report;
  // The quiesced onboard completed its registration trace.
  EXPECT_NE(report.find("causal traces:"), std::string::npos);
  EXPECT_EQ(fabric.telemetry().causal.open_count(), 0u);
  EXPECT_GE(fabric.telemetry().causal.completed_count(), 1u);
}

TEST(Inspect, MentionsReplicasWhenScaledOut) {
  sim::Simulator sim;
  FabricConfig config;
  config.routing_servers = 3;
  SdaFabric fabric{sim, config};
  fabric.add_border("b0");
  fabric.add_edge("e0");
  fabric.link("e0", "b0");
  fabric.finalize();
  EXPECT_NE(inspect(fabric).find("[+2 replicas]"), std::string::npos);
}

}  // namespace
}  // namespace sda::fabric
