// Integration tests for the paper's "Lessons Learnt" behaviours (§5):
// underlay outage fallback (5.1), edge reboot recovery (5.2), enforcement
// point trade-offs (5.3), and policy-update signaling (5.4).
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"

namespace sda::fabric {
namespace {

using net::GroupId;
using net::Ipv4Address;
using net::MacAddress;
using net::VnId;

constexpr VnId kVn{100};
constexpr GroupId kUsers{10};
constexpr GroupId kServers{20};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

struct LessonsFixture : ::testing::Test {
  void SetUp() override {
    fabric = std::make_unique<SdaFabric>(sim, FabricConfig{});
    fabric->add_border("b0");
    fabric->add_edge("e0");
    fabric->add_edge("e1");
    // Redundant triangle so a single link loss does not partition: e0 and
    // e1 each have a direct link plus a path through each other? No —
    // paper's fallback is about losing the *direct* path to a peer edge
    // while the border stays reachable. Build: e0-b0, e1-b0, e0-e1.
    fabric->link("e0", "b0");
    fabric->link("e1", "b0");
    fabric->link("e0", "e1");
    fabric->finalize();
    fabric->define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

    for (std::uint64_t i = 1; i <= 3; ++i) {
      EndpointDefinition def;
      def.credential = "h" + std::to_string(i);
      def.secret = "pw";
      def.mac = mac(i);
      def.vn = kVn;
      def.group = i == 3 ? kServers : kUsers;
      fabric->provision_endpoint(def);
    }
    fabric->set_delivery_listener([this](const dataplane::AttachedEndpoint& e,
                                         const net::OverlayFrame&, sim::SimTime) {
      deliveries.push_back(e.credential);
    });
  }

  OnboardResult connect(const std::string& credential, const std::string& edge) {
    OnboardResult result;
    fabric->connect_endpoint(credential, edge, 1,
                             [&](const OnboardResult& r) { result = r; });
    sim.run();
    return result;
  }

  sim::Simulator sim;
  std::unique_ptr<SdaFabric> fabric;
  std::vector<std::string> deliveries;
};

// §5.1: when an edge router becomes unreachable in the underlay, peers
// watching the IGP purge their map-cache entries towards it and fall back
// to the border default route.
TEST_F(LessonsFixture, UnderlayOutagePurgesCacheEntries) {
  connect("h1", "e0");
  const auto h2 = connect("h2", "e1");

  fabric->endpoint_send_udp(mac(1), h2.ip, 443, 100);
  sim.run();
  EXPECT_EQ(fabric->edge("e0").fib_size(), 1u);

  // e1 loses both links: unreachable from e0's IGP view.
  fabric->set_link_state("e1", "b0", false);
  fabric->set_link_state("e0", "e1", false);
  sim.run();  // IGP convergence + watcher notification
  EXPECT_EQ(fabric->edge("e0").fib_size(), 0u);
  EXPECT_GE(fabric->edge("e0").counters().rloc_fallbacks, 1u);

  // Traffic now default-routes to the border instead of blackholing into
  // the dead RLOC.
  const auto before = fabric->edge("e0").counters().default_routed;
  fabric->endpoint_send_udp(mac(1), h2.ip, 443, 100);
  sim.run();
  EXPECT_GT(fabric->edge("e0").counters().default_routed, before);
}

// §5.1 continued: restoring the links re-enables direct forwarding after
// re-resolution.
TEST_F(LessonsFixture, RecoveryAfterOutage) {
  connect("h1", "e0");
  const auto h2 = connect("h2", "e1");
  fabric->endpoint_send_udp(mac(1), h2.ip, 443, 100);
  sim.run();

  fabric->set_link_state("e1", "b0", false);
  fabric->set_link_state("e0", "e1", false);
  sim.run();
  fabric->set_link_state("e1", "b0", true);
  fabric->set_link_state("e0", "e1", true);
  sim.run();

  deliveries.clear();
  fabric->endpoint_send_udp(mac(1), h2.ip, 443, 100);
  sim.run();
  EXPECT_EQ(deliveries, std::vector<std::string>{"h2"});
  EXPECT_EQ(fabric->edge("e0").fib_size(), 1u);  // re-resolved
}

// §5.2: a rebooting edge loses its FIB; the transient border<->edge loop is
// broken by TTL decrement plus the border's stale-route guard, and the
// data-triggered SMR refreshes senders once endpoints re-onboard.
TEST_F(LessonsFixture, EdgeRebootRecoversEndpoints) {
  connect("h1", "e0");
  const auto h2 = connect("h2", "e1");
  fabric->endpoint_send_udp(mac(1), h2.ip, 443, 100);
  sim.run();
  deliveries.clear();

  fabric->reboot_edge("e1", std::chrono::seconds{5});
  EXPECT_EQ(fabric->edge("e1").endpoint_count(), 0u);

  // Traffic sent while e1 is down is lost but must not loop forever.
  fabric->endpoint_send_udp(mac(1), h2.ip, 443, 100);
  sim.run_until(sim.now() + std::chrono::seconds{1});
  EXPECT_TRUE(deliveries.empty());

  // After the downtime the endpoint re-onboards automatically.
  sim.run();
  EXPECT_EQ(fabric->edge("e1").endpoint_count(), 1u);
  EXPECT_EQ(fabric->location_of(mac(2)), "e1");

  deliveries.clear();
  fabric->endpoint_send_udp(mac(1), h2.ip, 443, 100);
  sim.run();
  EXPECT_EQ(deliveries, std::vector<std::string>{"h2"});
}

// §5.3: egress enforcement stores rules only where destination groups
// live; ingress enforcement must hold rules for remote destination groups
// too, trading state for bandwidth.
TEST_F(LessonsFixture, EgressKeepsRuleStateLocalToDestinationGroups) {
  fabric->set_rule({kVn, kUsers, kServers, policy::Action::Deny});
  connect("h1", "e0");  // user on e0
  connect("h3", "e1");  // server on e1

  // Egress: only e1 (hosting the destination group) holds the rule.
  EXPECT_EQ(fabric->edge("e0").sgacl().rule_count(), 0u);
  EXPECT_EQ(fabric->edge("e1").sgacl().rule_count(), 1u);
}

TEST_F(LessonsFixture, EgressEnforcementWastesFabricBandwidthOnDrops) {
  fabric->set_rule({kVn, kUsers, kServers, policy::Action::Deny});
  connect("h1", "e0");
  const auto h3 = connect("h3", "e1");

  fabric->endpoint_send_udp(mac(1), h3.ip, 443, 100);
  sim.run();
  EXPECT_TRUE(deliveries.empty());
  // The frame crossed the fabric before dying at the egress SGACL.
  EXPECT_GE(fabric->edge("e0").counters().encapsulated, 1u);
  EXPECT_EQ(fabric->edge("e1").counters().policy_drops, 1u);
}

// §5.4: moving one endpoint between groups costs a single CoA-style signal,
// while updating a rule costs one push per hosting edge.
TEST_F(LessonsFixture, PolicyUpdateSignalingCosts) {
  fabric->set_rule({kVn, kUsers, kServers, policy::Action::Deny});
  connect("h1", "e0");
  connect("h2", "e1");
  connect("h3", "e1");

  const auto& stats = fabric->policy_server().stats();
  const auto pushes_before = stats.rule_push_messages;
  const auto signals_before = stats.endpoint_change_signals;

  // Strategy A: move h1 to the servers group -> exactly one signal.
  fabric->reassign_endpoint_group("h1", kServers);
  sim.run();
  EXPECT_EQ(stats.endpoint_change_signals, signals_before + 1);

  // Strategy B: update a rule towards kServers (hosted on e0 and e1 now)
  // -> one push per hosting edge.
  fabric->update_rule({kVn, GroupId{77}, kServers, policy::Action::Deny});
  sim.run();
  EXPECT_EQ(stats.rule_push_messages, pushes_before + 2);
}

// §3.2.2 redundancy note: multiple borders all stay synchronized.
TEST_F(LessonsFixture, SecondBorderStaysSynced) {
  sim::Simulator sim2;
  SdaFabric dual{sim2, FabricConfig{}};
  dual.add_border("b0");
  dual.add_border("b1");
  dual.add_edge("e0");
  dual.link("e0", "b0");
  dual.link("e0", "b1");
  dual.link("b0", "b1");
  dual.finalize();
  dual.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  EndpointDefinition def;
  def.credential = "h";
  def.secret = "pw";
  def.mac = mac(9);
  def.vn = kVn;
  def.group = kUsers;
  dual.provision_endpoint(def);
  bool ok = false;
  dual.connect_endpoint("h", "e0", 1, [&](const OnboardResult& r) { ok = r.success; });
  sim2.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(dual.border("b0").fib_size(), 1u);
  EXPECT_EQ(dual.border("b1").fib_size(), 1u);
}

}  // namespace
}  // namespace sda::fabric
