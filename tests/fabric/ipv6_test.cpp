// IPv6 endpoint identity (§4.1: each endpoint registers IPv4 + IPv6 + MAC
// routes) and IPv6 forwarding through the fabric.
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"
#include "l2/slaac.hpp"

namespace sda::fabric {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;

constexpr VnId kVn{100};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

struct Ipv6Fixture : ::testing::Test {
  void SetUp() override {
    fabric = std::make_unique<SdaFabric>(sim, FabricConfig{});
    fabric->add_border("b0");
    fabric->add_edge("e0");
    fabric->add_edge("e1");
    fabric->link("e0", "b0");
    fabric->link("e1", "b0");
    fabric->finalize();
    fabric->define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16"),
                       *net::Ipv6Prefix::parse("2001:db8:100::/64")});
    fabric->set_rule({kVn, GroupId{10}, GroupId{20}, policy::Action::Deny});

    for (std::uint64_t i = 1; i <= 3; ++i) {
      EndpointDefinition def;
      def.credential = "h" + std::to_string(i);
      def.secret = "pw";
      def.mac = mac(i);
      def.vn = kVn;
      def.group = i == 3 ? GroupId{20} : GroupId{10};
      def.l2_services = i == 1;  // h1 registers its MAC too
      fabric->provision_endpoint(def);
    }
    fabric->set_delivery_listener([this](const dataplane::AttachedEndpoint& e,
                                         const net::OverlayFrame& f, sim::SimTime) {
      deliveries.emplace_back(e.credential, f.is_ipv6());
    });
  }

  OnboardResult connect(const std::string& credential, const std::string& edge) {
    OnboardResult result;
    fabric->connect_endpoint(credential, edge, 1,
                             [&](const OnboardResult& r) { result = r; });
    sim.run();
    return result;
  }

  sim::Simulator sim;
  std::unique_ptr<SdaFabric> fabric;
  std::vector<std::pair<std::string, bool>> deliveries;
};

TEST_F(Ipv6Fixture, OnboardingAssignsSlaacAddress) {
  const auto r = connect("h2", "e0");
  ASSERT_TRUE(r.success);
  ASSERT_TRUE(r.ipv6.has_value());
  EXPECT_TRUE(net::Ipv6Prefix::parse("2001:db8:100::/64")->contains(*r.ipv6));
  EXPECT_EQ(*r.ipv6, l2::slaac_address(*net::Ipv6Prefix::parse("2001:db8:100::/64"), mac(2)));
}

TEST_F(Ipv6Fixture, ThreeRoutesPerL2Endpoint) {
  connect("h1", "e0");  // l2_services=true: IPv4 + IPv6 + MAC
  EXPECT_EQ(fabric->map_server().mapping_count(kVn), 3u);
  connect("h2", "e1");  // no MAC registration: IPv4 + IPv6
  EXPECT_EQ(fabric->map_server().mapping_count(kVn), 5u);
}

TEST_F(Ipv6Fixture, Ipv6TrafficFlowsCrossEdge) {
  connect("h1", "e0");
  const auto h2 = connect("h2", "e1");
  ASSERT_TRUE(fabric->endpoint_send_udp6(mac(1), *h2.ipv6, 443, 256));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].first, "h2");
  EXPECT_TRUE(deliveries[0].second);  // delivered as IPv6

  // Second packet rides the cached IPv6 mapping.
  const auto misses_before = fabric->edge("e0").map_cache().stats().misses;
  fabric->endpoint_send_udp6(mac(1), *h2.ipv6, 443, 256);
  sim.run();
  EXPECT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(fabric->edge("e0").map_cache().stats().misses, misses_before);
}

TEST_F(Ipv6Fixture, SegmentationAppliesToIpv6Too) {
  connect("h1", "e0");                    // group 10
  const auto h3 = connect("h3", "e1");    // group 20: 10 -> 20 denied
  ASSERT_TRUE(h3.ipv6.has_value());
  fabric->endpoint_send_udp6(mac(1), *h3.ipv6, 443, 256);
  sim.run();
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(fabric->edge("e1").counters().policy_drops, 1u);
}

TEST_F(Ipv6Fixture, RoamMovesAllIdentities) {
  const auto h1 = connect("h1", "e0");
  fabric->roam_endpoint(mac(1), "e1", 2);
  sim.run();
  const net::VnEid v6_eid{kVn, net::Eid{*h1.ipv6}};
  const auto record = fabric->map_server().resolve(v6_eid);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->primary_rloc(), fabric->edge("e1").rloc());
}

TEST_F(Ipv6Fixture, DisconnectWithdrawsAllIdentities) {
  connect("h1", "e0");
  EXPECT_EQ(fabric->map_server().mapping_count(kVn), 3u);
  fabric->disconnect_endpoint(mac(1));
  sim.run();
  EXPECT_EQ(fabric->map_server().mapping_count(kVn), 0u);
}

TEST_F(Ipv6Fixture, SendWithoutSlaacVnFails) {
  sim::Simulator sim2;
  SdaFabric no6{sim2, FabricConfig{}};
  no6.add_border("b0");
  no6.add_edge("e0");
  no6.link("e0", "b0");
  no6.finalize();
  no6.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});  // no v6
  EndpointDefinition def;
  def.credential = "h";
  def.secret = "pw";
  def.mac = mac(9);
  def.vn = kVn;
  def.group = GroupId{10};
  no6.provision_endpoint(def);
  bool onboarded = false;
  no6.connect_endpoint("h", "e0", 1, [&](const OnboardResult& r) {
    onboarded = r.success;
    EXPECT_FALSE(r.ipv6.has_value());
  });
  sim2.run();
  ASSERT_TRUE(onboarded);
  EXPECT_FALSE(no6.endpoint_send_udp6(mac(9), *net::Ipv6Address::parse("2001:db8::1"), 1, 1));
}

}  // namespace
}  // namespace sda::fabric
