// Access VLANs scoped to edge ports (§3.5 element i), end to end.
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"

namespace sda::fabric {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;

constexpr VnId kVn{100};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

TEST(FabricVlan, TagValidatedStrippedInOverlayReappliedAtEgress) {
  sim::Simulator sim;
  SdaFabric fabric{sim, FabricConfig{}};
  fabric.add_border("b0");
  fabric.add_edge("e0");
  fabric.add_edge("e1");
  fabric.link("e0", "b0");
  fabric.link("e1", "b0");
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  EndpointDefinition voice;
  voice.credential = "phone";
  voice.secret = "pw";
  voice.mac = mac(1);
  voice.vn = kVn;
  voice.group = GroupId{10};
  voice.access_vlan = 120;  // voice VLAN on the access port
  fabric.provision_endpoint(voice);
  EndpointDefinition pc;
  pc.credential = "pc";
  pc.secret = "pw";
  pc.mac = mac(2);
  pc.vn = kVn;
  pc.group = GroupId{10};
  pc.access_vlan = 130;
  fabric.provision_endpoint(pc);

  net::Ipv4Address pc_ip;
  fabric.connect_endpoint("phone", "e0", 1);
  fabric.connect_endpoint("pc", "e1", 1, [&](const OnboardResult& r) { pc_ip = r.ip; });
  sim.run();

  std::optional<std::uint16_t> delivered_vlan;
  int delivered = 0;
  fabric.set_delivery_listener([&](const dataplane::AttachedEndpoint&,
                                   const net::OverlayFrame& f, sim::SimTime) {
    ++delivered;
    delivered_vlan = f.vlan_id;
  });

  ASSERT_TRUE(fabric.endpoint_send_udp(mac(1), pc_ip, 5060, 160));
  sim.run();
  ASSERT_EQ(delivered, 1);
  // Delivered with the *destination* port's VLAN (130), not the source's.
  EXPECT_EQ(delivered_vlan, 130);
  // VLANs never stretched: both edges saw only their own tags and the
  // fabric carried none (validated inside the edge pipelines).
  EXPECT_EQ(fabric.edge("e0").counters().vlan_drops, 0u);
}

}  // namespace
}  // namespace sda::fabric
