// Scale/soak test: a mid-sized fabric under mass onboarding, full-mesh-ish
// traffic, and a mass-roam wave — asserting global invariants rather than
// single behaviours.
#include <gtest/gtest.h>

#include <unordered_set>

#include "fabric/fabric.hpp"

namespace sda::fabric {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;

constexpr VnId kVn{7};
constexpr unsigned kEdges = 50;
constexpr unsigned kHosts = 1000;

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0600'0000'0000ull | i); }

struct ScaleFixture : ::testing::Test {
  void SetUp() override {
    FabricConfig config;
    config.l2_gateway = false;
    config.seed = 77;
    fabric = std::make_unique<SdaFabric>(sim, config);
    fabric->add_border("b0");
    for (unsigned e = 0; e < kEdges; ++e) {
      fabric->add_edge("e" + std::to_string(e));
      fabric->link("e" + std::to_string(e), "b0");
    }
    fabric->finalize();
    fabric->define_vn({kVn, "fleet", *net::Ipv4Prefix::parse("10.64.0.0/14")});

    ips.resize(kHosts);
    unsigned onboarded = 0;
    for (unsigned i = 0; i < kHosts; ++i) {
      EndpointDefinition def;
      def.credential = "h" + std::to_string(i);
      def.secret = "pw";
      def.mac = mac(i);
      def.vn = kVn;
      def.group = GroupId{10};
      fabric->provision_endpoint(def);
      fabric->connect_endpoint(def.credential, "e" + std::to_string(i % kEdges), 1,
                               [this, i, &onboarded](const OnboardResult& r) {
                                 ASSERT_TRUE(r.success);
                                 ips[i] = r.ip;
                                 ++onboarded;
                               });
    }
    sim.run();
    ASSERT_EQ(onboarded, kHosts);
  }

  sim::Simulator sim;
  std::unique_ptr<SdaFabric> fabric;
  std::vector<net::Ipv4Address> ips;
};

TEST_F(ScaleFixture, OnboardingInvariants) {
  // One mapping per host; every IP unique; border fully synchronized.
  EXPECT_EQ(fabric->map_server().mapping_count(kVn), kHosts);
  EXPECT_EQ(fabric->border("b0").fib_size(), kHosts);
  std::unordered_set<std::uint32_t> unique;
  for (const auto ip : ips) EXPECT_TRUE(unique.insert(ip.value()).second);
  std::size_t endpoints = 0;
  for (const auto& name : fabric->edge_names()) {
    endpoints += fabric->edge(name).endpoint_count();
  }
  EXPECT_EQ(endpoints, kHosts);
}

TEST_F(ScaleFixture, AllPairsSampleTrafficDelivered) {
  std::uint64_t delivered = 0;
  fabric->set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime) {
        ++delivered;
      });
  sim::Rng rng{5};
  constexpr unsigned kFlows = 3000;
  for (unsigned f = 0; f < kFlows; ++f) {
    const auto src = rng.next_below(kHosts);
    auto dst = rng.next_below(kHosts);
    if (dst == src) dst = (dst + 1) % kHosts;
    ASSERT_TRUE(fabric->endpoint_send_udp(mac(src), ips[dst], 443, 200));
  }
  sim.run();
  // Allow-by-default policy and a healthy underlay: zero loss.
  EXPECT_EQ(delivered, kFlows);
  // Reactive state: every edge's cache holds at most the destinations its
  // hosts touched, never the full host table.
  for (const auto& name : fabric->edge_names()) {
    EXPECT_LT(fabric->edge(name).fib_size(), kHosts / 2) << name;
  }
}

TEST_F(ScaleFixture, MassRoamKeepsEverythingConsistent) {
  sim::Rng rng{9};
  unsigned roams_done = 0;
  constexpr unsigned kRoams = 200;
  std::unordered_set<unsigned> moving;
  for (unsigned r = 0; r < kRoams; ++r) {
    unsigned host = static_cast<unsigned>(rng.next_below(kHosts));
    while (!moving.insert(host).second) host = (host + 1) % kHosts;
    const auto target = "e" + std::to_string(rng.next_below(kEdges));
    fabric->roam_endpoint(mac(host), target, 2, [&roams_done](const OnboardResult& res) {
      ASSERT_TRUE(res.success);
      ++roams_done;
    });
  }
  sim.run();
  EXPECT_EQ(roams_done, kRoams);

  // Global invariants hold after the wave.
  EXPECT_EQ(fabric->map_server().mapping_count(kVn), kHosts);
  EXPECT_EQ(fabric->border("b0").fib_size(), kHosts);
  std::size_t endpoints = 0;
  for (const auto& name : fabric->edge_names()) {
    endpoints += fabric->edge(name).endpoint_count();
  }
  EXPECT_EQ(endpoints, kHosts);

  // The routing server and the edges agree on every location.
  for (unsigned i = 0; i < kHosts; ++i) {
    const auto location = fabric->location_of(mac(i));
    ASSERT_TRUE(location.has_value()) << i;
    const auto record =
        fabric->map_server().resolve(net::VnEid{kVn, net::Eid{ips[i]}});
    ASSERT_TRUE(record.has_value()) << i;
    EXPECT_EQ(record->primary_rloc(), fabric->edge(*location).rloc()) << i;
    EXPECT_NE(fabric->edge(*location).find_endpoint(mac(i)), nullptr) << i;
  }
}

}  // namespace
}  // namespace sda::fabric
