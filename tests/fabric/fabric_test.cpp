// End-to-end integration tests of the SDA fabric: onboarding (Fig. 3),
// reactive packet flow (Fig. 4), mobility (Figs. 5-6), segmentation, and
// border synchronization.
#include "fabric/fabric.hpp"

#include <gtest/gtest.h>

namespace sda::fabric {
namespace {

using net::GroupId;
using net::Ipv4Address;
using net::MacAddress;
using net::VnId;

constexpr VnId kCorp{100};
constexpr GroupId kEmployees{10};
constexpr GroupId kIot{20};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

struct FabricFixture : ::testing::Test {
  void SetUp() override {
    fabric = std::make_unique<SdaFabric>(sim, FabricConfig{});
    fabric->add_border("b0");
    fabric->add_edge("e0");
    fabric->add_edge("e1");
    fabric->add_edge("e2");
    fabric->link("e0", "b0");
    fabric->link("e1", "b0");
    fabric->link("e2", "b0");
    fabric->finalize();

    fabric->define_vn({kCorp, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
    fabric->set_rule({kCorp, kEmployees, kIot, policy::Action::Deny});
    fabric->add_external_prefix(kCorp, *net::Ipv4Prefix::parse("0.0.0.0/0"));

    provision("alice", mac(1), kEmployees);
    provision("bob", mac(2), kEmployees);
    provision("camera", mac(3), kIot);

    fabric->set_delivery_listener([this](const dataplane::AttachedEndpoint& e,
                                         const net::OverlayFrame&, sim::SimTime) {
      deliveries.push_back(e.credential);
    });
  }

  void provision(const std::string& credential, MacAddress m, GroupId group,
                 bool l2 = false) {
    EndpointDefinition def;
    def.credential = credential;
    def.secret = "pw";
    def.mac = m;
    def.vn = kCorp;
    def.group = group;
    def.l2_services = l2;
    fabric->provision_endpoint(def);
  }

  OnboardResult connect(const std::string& credential, const std::string& edge) {
    OnboardResult result;
    fabric->connect_endpoint(credential, edge, 1,
                             [&](const OnboardResult& r) { result = r; });
    sim.run();
    return result;
  }

  sim::Simulator sim;
  std::unique_ptr<SdaFabric> fabric;
  std::vector<std::string> deliveries;
};

TEST_F(FabricFixture, OnboardingCompletesAndRegisters) {
  const OnboardResult r = connect("alice", "e0");
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.vn, kCorp);
  EXPECT_EQ(r.group, kEmployees);
  EXPECT_FALSE(r.ip.is_unspecified());
  EXPECT_GT(r.elapsed.count(), 0);
  EXPECT_EQ(fabric->edge("e0").endpoint_count(), 1u);
  EXPECT_EQ(fabric->map_server().mapping_count(kCorp), 1u);
  EXPECT_EQ(fabric->location_of(mac(1)), "e0");
  // Border pub/sub picked up the registration.
  EXPECT_EQ(fabric->border("b0").fib_size(), 1u);
}

TEST_F(FabricFixture, OnboardingFailsWithBadCredential) {
  provision("eve", mac(9), kEmployees);
  fabric->policy_server().provision_endpoint("eve", "different-secret",
                                             {kCorp, kEmployees});
  const OnboardResult r = connect("eve", "e0");
  EXPECT_FALSE(r.success);
  EXPECT_EQ(fabric->edge("e0").endpoint_count(), 0u);
}

TEST_F(FabricFixture, UnknownCredentialThrows) {
  EXPECT_THROW(fabric->connect_endpoint("ghost", "e0", 1), std::invalid_argument);
}

TEST_F(FabricFixture, CrossEdgeTrafficResolvesThenFlowsDirect) {
  const auto alice = connect("alice", "e0");
  const auto bob = connect("bob", "e1");

  // First packet: cache miss -> default-routed via the border, and a
  // Map-Request fires. The packet still arrives (hairpinned).
  EXPECT_TRUE(fabric->endpoint_send_udp(mac(1), bob.ip, 443, 100));
  sim.run();
  EXPECT_EQ(deliveries, std::vector<std::string>{"bob"});
  EXPECT_EQ(fabric->edge("e0").counters().default_routed, 1u);
  EXPECT_GE(fabric->border("b0").counters().hairpinned, 1u);
  EXPECT_EQ(fabric->edge("e0").fib_size(), 1u);  // reply cached

  // Second packet: direct encapsulation, no extra default-routing.
  fabric->endpoint_send_udp(mac(1), bob.ip, 443, 100);
  sim.run();
  EXPECT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(fabric->edge("e0").counters().default_routed, 1u);
}

TEST_F(FabricFixture, SameEdgeTrafficStaysLocal) {
  connect("alice", "e0");
  const auto bob = connect("bob", "e0");
  fabric->endpoint_send_udp(mac(1), bob.ip, 443, 100);
  sim.run();
  EXPECT_EQ(deliveries, std::vector<std::string>{"bob"});
  EXPECT_EQ(fabric->edge("e0").counters().locally_switched, 1u);
  EXPECT_EQ(fabric->edge("e0").counters().encapsulated, 0u);
}

TEST_F(FabricFixture, MicroSegmentationDropsOnEgress) {
  connect("alice", "e0");
  const auto camera = connect("camera", "e1");
  fabric->endpoint_send_udp(mac(1), camera.ip, 554, 100);  // employee -> iot: deny
  sim.run();
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(fabric->edge("e1").counters().policy_drops, 1u);

  // IoT -> employee is not denied.
  const auto alice_ip = *fabric->dhcp_server().lease_of(kCorp, mac(1));
  fabric->endpoint_send_udp(mac(3), alice_ip, 80, 100);
  sim.run();
  EXPECT_EQ(deliveries, std::vector<std::string>{"alice"});
}

TEST_F(FabricFixture, MacroSegmentationIsolatesVns) {
  fabric->define_vn({VnId{200}, "guest", *net::Ipv4Prefix::parse("10.200.0.0/16")});
  provision("guest-1", mac(7), kEmployees);
  fabric->policy_server().provision_endpoint("guest-1", "pw", {VnId{200}, kEmployees});
  connect("alice", "e0");
  const auto guest = connect("guest-1", "e1");
  ASSERT_TRUE(guest.success);
  EXPECT_EQ(guest.vn, VnId{200});

  // Alice (VN 100) sends to the guest's IP: different VN, no mapping, so it
  // ends at the border and is dropped (no external prefix covers VN 100's
  // view of 10.200/16... actually 0/0 covers it: it leaves as external).
  fabric->endpoint_send_udp(mac(1), guest.ip, 80, 100);
  sim.run();
  EXPECT_TRUE(deliveries.empty());  // never delivered inside the fabric
}

TEST_F(FabricFixture, OverlappingAddressSpacesStayIsolated) {
  // The VRF selling point: two VNs may use the *same* IP space, and even
  // identical addresses never bleed across (paper §2 "Segmentation").
  fabric->define_vn({VnId{201}, "tenant-a", *net::Ipv4Prefix::parse("10.200.0.0/16")});
  fabric->define_vn({VnId{202}, "tenant-b", *net::Ipv4Prefix::parse("10.200.0.0/16")});
  provision("ta-1", mac(21), kEmployees);
  provision("tb-1", mac(22), kEmployees);
  provision("tb-2", mac(23), kEmployees);
  fabric->policy_server().provision_endpoint("ta-1", "pw", {VnId{201}, kEmployees});
  fabric->policy_server().provision_endpoint("tb-1", "pw", {VnId{202}, kEmployees});
  fabric->policy_server().provision_endpoint("tb-2", "pw", {VnId{202}, kEmployees});

  const auto ta1 = connect("ta-1", "e0");
  const auto tb1 = connect("tb-1", "e1");
  const auto tb2 = connect("tb-2", "e2");
  ASSERT_TRUE(ta1.success && tb1.success && tb2.success);
  // Same pool, independent allocators: the first host of each VN gets the
  // same address.
  EXPECT_EQ(ta1.ip, tb1.ip);

  // tb-2 sends to that shared address: only its own VN's owner receives.
  fabric->endpoint_send_udp(mac(23), tb1.ip, 443, 100);
  sim.run();
  EXPECT_EQ(deliveries, std::vector<std::string>{"tb-1"});
  // And the routing server holds one mapping per (VN, EID).
  EXPECT_EQ(fabric->map_server().mapping_count(VnId{201}), 1u);
  EXPECT_EQ(fabric->map_server().mapping_count(VnId{202}), 2u);
}

TEST_F(FabricFixture, ExternalTrafficExitsViaBorder) {
  connect("alice", "e0");
  fabric->endpoint_send_udp(mac(1), *Ipv4Address::parse("198.51.100.9"), 443, 200);
  sim.run();
  EXPECT_EQ(fabric->border("b0").counters().external_out, 1u);
  // The external mapping is cached: second packet goes straight to border
  // as a cache *hit* (not via default route).
  const auto before = fabric->edge("e0").counters().default_routed;
  fabric->endpoint_send_udp(mac(1), *Ipv4Address::parse("198.51.100.9"), 443, 200);
  sim.run();
  EXPECT_EQ(fabric->edge("e0").counters().default_routed, before);
  EXPECT_EQ(fabric->border("b0").counters().external_out, 2u);
}

TEST_F(FabricFixture, InboundExternalTrafficReachesEndpoint) {
  const auto alice = connect("alice", "e0");
  fabric->external_send_udp("b0", kCorp, *Ipv4Address::parse("8.8.8.8"), alice.ip, 100);
  sim.run();
  EXPECT_EQ(deliveries, std::vector<std::string>{"alice"});
}

TEST_F(FabricFixture, RoamUpdatesLocationAndNotifiesOldEdge) {
  const auto alice = connect("alice", "e0");
  connect("bob", "e1");

  // Bob talks to alice so e1 holds a cached mapping to e0.
  fabric->endpoint_send_udp(mac(2), alice.ip, 443, 100);
  sim.run();
  ASSERT_EQ(deliveries, std::vector<std::string>{"alice"});
  deliveries.clear();

  // Alice roams e0 -> e1's neighbour... roam to e1 itself.
  OnboardResult roamed;
  fabric->roam_endpoint(mac(1), "e1", 2, [&](const OnboardResult& r) { roamed = r; });
  sim.run();
  EXPECT_TRUE(roamed.success);
  EXPECT_EQ(roamed.ip, alice.ip);  // sticky DHCP lease survives the move
  EXPECT_EQ(fabric->location_of(mac(1)), "e1");
  EXPECT_EQ(fabric->edge("e0").endpoint_count(), 0u);
  EXPECT_EQ(fabric->edge("e1").endpoint_count(), 2u);
  // Fig. 5: the old edge received a Map-Notify with the new location.
  const auto* stale = fabric->edge("e0").map_cache().lookup(
      net::VnEid{kCorp, net::Eid{alice.ip}}, sim.now());
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->primary_rloc(), fabric->edge("e1").rloc());

  // Bob can still reach alice (same edge now).
  fabric->endpoint_send_udp(mac(2), alice.ip, 443, 100);
  sim.run();
  EXPECT_EQ(deliveries, std::vector<std::string>{"alice"});
}

TEST_F(FabricFixture, StaleSenderRefreshedByDataTriggeredSmr) {
  const auto alice = connect("alice", "e0");
  connect("bob", "e1");

  // Bob caches alice@e0.
  fabric->endpoint_send_udp(mac(2), alice.ip, 443, 100);
  sim.run();
  deliveries.clear();

  // Alice roams to e2. Bob's (e1) cache is now stale: it points at e0.
  fabric->roam_endpoint(mac(1), "e2", 2);
  sim.run();

  // Bob sends again: e1 encaps to e0 using the stale entry; e0 forwards to
  // the new location (Fig. 6 step 3) and SMRs the sender's edge (step 2).
  fabric->endpoint_send_udp(mac(2), alice.ip, 443, 100);
  sim.run();
  EXPECT_EQ(deliveries, std::vector<std::string>{"alice"});  // not lost
  EXPECT_GE(fabric->edge("e0").counters().stale_forwards, 1u);
  EXPECT_GE(fabric->edge("e1").counters().smr_received, 1u);

  // After the SMR-triggered re-resolution, e1 encapsulates straight to e2.
  deliveries.clear();
  const auto stale_before = fabric->edge("e0").counters().stale_forwards;
  fabric->endpoint_send_udp(mac(2), alice.ip, 443, 100);
  sim.run();
  EXPECT_EQ(deliveries, std::vector<std::string>{"alice"});
  EXPECT_EQ(fabric->edge("e0").counters().stale_forwards, stale_before);
}

TEST_F(FabricFixture, DisconnectWithdrawsEverywhere) {
  const auto alice = connect("alice", "e0");
  connect("bob", "e1");
  fabric->endpoint_send_udp(mac(2), alice.ip, 443, 100);
  sim.run();
  EXPECT_EQ(fabric->border("b0").fib_size(), 2u);

  fabric->disconnect_endpoint(mac(1));
  sim.run();
  EXPECT_EQ(fabric->location_of(mac(1)), std::nullopt);
  EXPECT_EQ(fabric->map_server().mapping_count(kCorp), 1u);
  EXPECT_EQ(fabric->border("b0").fib_size(), 1u);  // withdrawal synced
  EXPECT_EQ(fabric->edge("e0").endpoint_count(), 0u);
}

TEST_F(FabricFixture, GroupReassignmentRetagsLiveEndpoint) {
  const auto camera = connect("camera", "e1");
  connect("alice", "e0");

  // employee->iot denied; after moving the camera to the employees group
  // the same traffic is allowed (policy freshness via re-auth, §5.3).
  fabric->endpoint_send_udp(mac(1), camera.ip, 554, 100);
  sim.run();
  EXPECT_TRUE(deliveries.empty());

  EXPECT_TRUE(fabric->reassign_endpoint_group("camera", kEmployees));
  sim.run();
  EXPECT_EQ(
      fabric->edge("e1").vrf().lookup(net::VnEid{kCorp, net::Eid{camera.ip}})->group,
      kEmployees);

  fabric->endpoint_send_udp(mac(1), camera.ip, 554, 100);
  sim.run();
  EXPECT_EQ(deliveries, std::vector<std::string>{"camera"});
}

TEST_F(FabricFixture, RuleUpdatePushedToHostingEdge) {
  connect("camera", "e1");
  EXPECT_EQ(fabric->edge("e1").sgacl().rule_count(), 1u);  // deny employees->iot
  fabric->update_rule({kCorp, GroupId{15}, kIot, policy::Action::Deny});
  sim.run();
  EXPECT_EQ(fabric->edge("e1").sgacl().rule_count(), 2u);
  EXPECT_EQ(fabric->policy_server().stats().rule_push_messages, 1u);
}

TEST_F(FabricFixture, ReconnectElsewhereDetachesOldAttachment) {
  connect("alice", "e0");
  ASSERT_EQ(fabric->edge("e0").endpoint_count(), 1u);
  // Fresh connect on another edge (cable moved without a clean roam).
  const auto r = connect("alice", "e1");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(fabric->edge("e0").endpoint_count(), 0u);
  EXPECT_EQ(fabric->edge("e1").endpoint_count(), 1u);
  EXPECT_EQ(fabric->location_of(mac(1)), "e1");
  // Exactly one mapping, pointing at the new edge.
  EXPECT_EQ(fabric->map_server().mapping_count(kCorp), 1u);
  EXPECT_EQ(fabric->map_server()
                .resolve(net::VnEid{kCorp, net::Eid{r.ip}})
                ->primary_rloc(),
            fabric->edge("e1").rloc());
}

TEST_F(FabricFixture, OnboardingElapsedIsFasterOnRoam) {
  const auto fresh = connect("alice", "e0");
  OnboardResult roamed;
  fabric->roam_endpoint(mac(1), "e1", 1, [&](const OnboardResult& r) { roamed = r; });
  sim.run();
  EXPECT_TRUE(roamed.success);
  EXPECT_LT(roamed.elapsed, fresh.elapsed);  // fast re-auth, no DHCP round
}

}  // namespace
}  // namespace sda::fabric
