#include "dataplane/vrf.hpp"

#include <gtest/gtest.h>

namespace sda::dataplane {
namespace {

using net::Eid;
using net::GroupId;
using net::Ipv4Address;
using net::MacAddress;
using net::VnEid;
using net::VnId;

VnEid ip_eid(std::uint32_t vn, const char* ip) {
  return VnEid{VnId{vn}, Eid{*Ipv4Address::parse(ip)}};
}

LocalEntry entry(PortId port, std::uint16_t group) {
  return LocalEntry{port, GroupId{group}, MacAddress::from_u64(0x02AA00 + port)};
}

TEST(VrfSet, InstallLookupRemove) {
  VrfSet vrf;
  vrf.install(ip_eid(1, "10.1.0.5"), entry(3, 10));
  const LocalEntry* found = vrf.lookup(ip_eid(1, "10.1.0.5"));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->port, 3);
  EXPECT_EQ(found->group, GroupId{10});
  EXPECT_TRUE(vrf.remove(ip_eid(1, "10.1.0.5")));
  EXPECT_FALSE(vrf.remove(ip_eid(1, "10.1.0.5")));
  EXPECT_EQ(vrf.lookup(ip_eid(1, "10.1.0.5")), nullptr);
}

TEST(VrfSet, VnIsolation) {
  VrfSet vrf;
  vrf.install(ip_eid(1, "10.1.0.5"), entry(1, 10));
  vrf.install(ip_eid(2, "10.1.0.5"), entry(2, 20));
  EXPECT_EQ(vrf.lookup(ip_eid(1, "10.1.0.5"))->port, 1);
  EXPECT_EQ(vrf.lookup(ip_eid(2, "10.1.0.5"))->port, 2);
  EXPECT_EQ(vrf.lookup(ip_eid(3, "10.1.0.5")), nullptr);
  EXPECT_EQ(vrf.size(VnId{1}), 1u);
  EXPECT_EQ(vrf.size(), 2u);
}

TEST(VrfSet, MacAndIpEidsCoexist) {
  VrfSet vrf;
  const VnEid mac_eid{VnId{1}, Eid{MacAddress::from_u64(0x02AB)}};
  vrf.install(ip_eid(1, "10.1.0.5"), entry(1, 10));
  vrf.install(mac_eid, entry(1, 10));
  EXPECT_EQ(vrf.size(VnId{1}), 2u);
  EXPECT_NE(vrf.lookup(mac_eid), nullptr);
}

TEST(VrfSet, RetagUpdatesGroupInPlace) {
  VrfSet vrf;
  vrf.install(ip_eid(1, "10.1.0.5"), entry(1, 10));
  EXPECT_TRUE(vrf.retag(ip_eid(1, "10.1.0.5"), GroupId{15}));
  EXPECT_EQ(vrf.lookup(ip_eid(1, "10.1.0.5"))->group, GroupId{15});
  EXPECT_FALSE(vrf.retag(ip_eid(1, "10.9.9.9"), GroupId{15}));
  EXPECT_FALSE(vrf.retag(ip_eid(9, "10.1.0.5"), GroupId{15}));
}

TEST(VrfSet, InstallReplacesExisting) {
  VrfSet vrf;
  vrf.install(ip_eid(1, "10.1.0.5"), entry(1, 10));
  vrf.install(ip_eid(1, "10.1.0.5"), entry(7, 12));
  EXPECT_EQ(vrf.size(), 1u);
  EXPECT_EQ(vrf.lookup(ip_eid(1, "10.1.0.5"))->port, 7);
}

TEST(VrfSet, WalkCoversAllFamilies) {
  VrfSet vrf;
  vrf.install(ip_eid(1, "10.1.0.5"), entry(1, 10));
  vrf.install(VnEid{VnId{1}, Eid{MacAddress::from_u64(0x02AB)}}, entry(1, 10));
  vrf.install(VnEid{VnId{2}, Eid{*net::Ipv6Address::parse("2001:db8::1")}}, entry(2, 20));
  std::size_t count = 0;
  vrf.walk([&](const VnEid& eid, const LocalEntry&) {
    ++count;
    EXPECT_TRUE(eid.vn == VnId{1} || eid.vn == VnId{2});
  });
  EXPECT_EQ(count, 3u);
}

TEST(VrfSet, ClearEmptiesEverything) {
  VrfSet vrf;
  vrf.install(ip_eid(1, "10.1.0.5"), entry(1, 10));
  vrf.install(ip_eid(2, "10.1.0.6"), entry(2, 20));
  vrf.clear();
  EXPECT_EQ(vrf.size(), 0u);
  EXPECT_EQ(vrf.lookup(ip_eid(1, "10.1.0.5")), nullptr);
}

}  // namespace
}  // namespace sda::dataplane
