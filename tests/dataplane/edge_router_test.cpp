#include "dataplane/edge_router.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace sda::dataplane {
namespace {

using net::Eid;
using net::GroupId;
using net::Ipv4Address;
using net::MacAddress;
using net::OverlayFrame;
using net::VnEid;
using net::VnId;
using policy::Action;

constexpr VnId kVn{100};

struct EdgeFixture : ::testing::Test {
  EdgeFixture() : router(sim, make_config()) {
    router.set_send_data([this](const net::FabricFrame& f) { sent.push_back(f); });
    router.set_send_map_request([this](const lisp::MapRequest& r) { requests.push_back(r); });
    router.set_send_map_register([this](const lisp::MapRegister& r) { registers.push_back(r); });
    router.set_send_smr([this](Ipv4Address to, const lisp::SolicitMapRequest& s) {
      smrs.emplace_back(to, s);
    });
    router.set_deliver_local([this](const AttachedEndpoint& e, const OverlayFrame& f) {
      delivered.emplace_back(e, f);
    });
    router.set_download_rules([this](VnId, GroupId dst) {
      ++rule_downloads;
      if (dst == GroupId{20}) {
        return std::vector<policy::Rule>{{{GroupId{10}, GroupId{20}}, Action::Deny}};
      }
      return std::vector<policy::Rule>{};
    });
    router.set_release_group([this](VnId, GroupId g) { released.push_back(g); });
  }

  static EdgeRouterConfig make_config() {
    EdgeRouterConfig cfg;
    cfg.name = "edge-0";
    cfg.rloc = *Ipv4Address::parse("10.0.0.10");
    cfg.border_rloc = *Ipv4Address::parse("10.0.0.1");
    return cfg;
  }

  AttachedEndpoint make_endpoint(std::uint64_t mac, const char* ip, std::uint16_t group) {
    AttachedEndpoint e;
    e.mac = MacAddress::from_u64(mac);
    e.ip = *Ipv4Address::parse(ip);
    e.vn = kVn;
    e.group = GroupId{group};
    e.port = 1;
    e.credential = "ep-" + std::to_string(mac);
    return e;
  }

  OverlayFrame udp_to(const AttachedEndpoint& from, const char* dst_ip) {
    OverlayFrame frame;
    frame.source_mac = from.mac;
    frame.destination_mac = MacAddress::from_u64(0x020000000099ull);
    net::Ipv4Datagram dgram;
    dgram.source = from.ip;
    dgram.destination = *Ipv4Address::parse(dst_ip);
    dgram.payload_size = 100;
    frame.l3 = dgram;
    return frame;
  }

  void install_remote(const char* ip, const char* rloc, std::uint16_t group = 0) {
    lisp::MapReply reply;
    reply.eid = VnEid{kVn, Eid{*Ipv4Address::parse(ip)}};
    reply.rlocs = {net::Rloc{*Ipv4Address::parse(rloc)}};
    reply.ttl_seconds = 3600;
    reply.group = group;
    router.receive_map_reply(reply);
  }

  sim::Simulator sim;
  EdgeRouter router;
  std::vector<net::FabricFrame> sent;
  std::vector<lisp::MapRequest> requests;
  std::vector<lisp::MapRegister> registers;
  std::vector<std::pair<Ipv4Address, lisp::SolicitMapRequest>> smrs;
  std::vector<std::pair<AttachedEndpoint, OverlayFrame>> delivered;
  std::vector<GroupId> released;
  int rule_downloads = 0;
};

TEST_F(EdgeFixture, AttachRegistersAndDownloadsRules) {
  router.attach_endpoint(make_endpoint(1, "10.1.0.5", 20));
  ASSERT_EQ(registers.size(), 1u);
  EXPECT_EQ(registers[0].eid, (VnEid{kVn, Eid{*Ipv4Address::parse("10.1.0.5")}}));
  EXPECT_EQ(registers[0].rlocs[0].address, router.rloc());
  EXPECT_EQ(registers[0].group, 20);
  EXPECT_EQ(rule_downloads, 1);
  EXPECT_EQ(router.endpoint_count(), 1u);
  EXPECT_EQ(router.vrf().size(), 1u);
  EXPECT_EQ(router.sgacl().rule_count(), 1u);
}

TEST_F(EdgeFixture, AttachWithL2RegistersMacToo) {
  AttachedEndpoint e = make_endpoint(1, "10.1.0.5", 20);
  e.register_mac = true;
  router.attach_endpoint(e);
  ASSERT_EQ(registers.size(), 2u);
  EXPECT_TRUE(registers[1].eid.eid.is_mac());
  EXPECT_EQ(router.vrf().size(), 2u);
}

TEST_F(EdgeFixture, SecondEndpointSameGroupDownloadsOnce) {
  router.attach_endpoint(make_endpoint(1, "10.1.0.5", 20));
  router.attach_endpoint(make_endpoint(2, "10.1.0.6", 20));
  EXPECT_EQ(rule_downloads, 1);
}

TEST_F(EdgeFixture, DetachLastGroupMemberReleasesRules) {
  router.attach_endpoint(make_endpoint(1, "10.1.0.5", 20));
  router.attach_endpoint(make_endpoint(2, "10.1.0.6", 20));
  router.detach_endpoint(MacAddress::from_u64(1));
  EXPECT_TRUE(released.empty());
  router.detach_endpoint(MacAddress::from_u64(2));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], GroupId{20});
  EXPECT_EQ(router.sgacl().rule_count(), 0u);
}

TEST_F(EdgeFixture, DetachWithDeregisterSendsZeroTtl) {
  router.attach_endpoint(make_endpoint(1, "10.1.0.5", 20));
  router.detach_endpoint(MacAddress::from_u64(1), /*deregister=*/true);
  ASSERT_EQ(registers.size(), 2u);
  EXPECT_EQ(registers[1].ttl_seconds, 0u);
}

TEST_F(EdgeFixture, CacheMissDefaultRoutesToBorderAndResolves) {
  const auto e = make_endpoint(1, "10.1.0.5", 20);
  router.attach_endpoint(e);
  router.endpoint_transmit(e.mac, udp_to(e, "10.1.7.7"));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].outer_destination, *Ipv4Address::parse("10.0.0.1"));
  EXPECT_EQ(sent[0].vn, kVn);
  EXPECT_EQ(sent[0].source_group, GroupId{20});
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].eid, (VnEid{kVn, Eid{*Ipv4Address::parse("10.1.7.7")}}));
  EXPECT_EQ(router.counters().default_routed, 1u);

  // A second packet while the request is pending must not duplicate it.
  router.endpoint_transmit(e.mac, udp_to(e, "10.1.7.7"));
  EXPECT_EQ(requests.size(), 1u);
  EXPECT_EQ(sent.size(), 2u);
}

TEST_F(EdgeFixture, CacheHitEncapsulatesDirectly) {
  const auto e = make_endpoint(1, "10.1.0.5", 20);
  router.attach_endpoint(e);
  install_remote("10.1.7.7", "10.0.0.20");
  router.endpoint_transmit(e.mac, udp_to(e, "10.1.7.7"));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].outer_destination, *Ipv4Address::parse("10.0.0.20"));
  EXPECT_EQ(router.counters().default_routed, 0u);
  EXPECT_EQ(router.fib_size(), 1u);
}

TEST_F(EdgeFixture, UnauthenticatedSourceDropped) {
  const auto ghost = make_endpoint(66, "10.1.0.66", 20);
  router.endpoint_transmit(ghost.mac, udp_to(ghost, "10.1.7.7"));
  EXPECT_TRUE(sent.empty());
  EXPECT_EQ(router.counters().no_route_drops, 1u);
}

TEST_F(EdgeFixture, LocalDeliveryRunsEgressPipeline) {
  const auto a = make_endpoint(1, "10.1.0.5", 10);
  const auto b = make_endpoint(2, "10.1.0.6", 20);  // dst group 20: deny from 10
  router.attach_endpoint(a);
  router.attach_endpoint(b);
  router.endpoint_transmit(a.mac, udp_to(a, "10.1.0.6"));
  EXPECT_TRUE(delivered.empty());  // denied by SGACL
  EXPECT_EQ(router.counters().policy_drops, 1u);
  EXPECT_EQ(router.counters().locally_switched, 1u);

  // Reverse direction (20 -> 10) has no deny rule.
  router.endpoint_transmit(b.mac, udp_to(b, "10.1.0.5"));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].first.mac, a.mac);
}

TEST_F(EdgeFixture, EgressPipelineEnforcesOnDecap) {
  const auto b = make_endpoint(2, "10.1.0.6", 20);
  router.attach_endpoint(b);

  net::FabricFrame frame;
  frame.outer_source = *Ipv4Address::parse("10.0.0.30");
  frame.outer_destination = router.rloc();
  frame.vn = kVn;
  frame.source_group = GroupId{10};  // denied towards 20
  frame.inner = udp_to(make_endpoint(9, "10.1.9.9", 10), "10.1.0.6");
  router.receive_fabric_frame(frame);
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(router.counters().policy_drops, 1u);

  frame.source_group = GroupId{30};  // allowed
  router.receive_fabric_frame(frame);
  EXPECT_EQ(delivered.size(), 1u);
}

TEST_F(EdgeFixture, PolicyAppliedBitSkipsEgressSgacl) {
  const auto b = make_endpoint(2, "10.1.0.6", 20);
  router.attach_endpoint(b);
  net::FabricFrame frame;
  frame.outer_source = *Ipv4Address::parse("10.0.0.30");
  frame.outer_destination = router.rloc();
  frame.vn = kVn;
  frame.source_group = GroupId{10};
  frame.policy_applied = true;  // ingress already enforced (§5.3 ablation)
  frame.inner = udp_to(make_endpoint(9, "10.1.9.9", 10), "10.1.0.6");
  router.receive_fabric_frame(frame);
  EXPECT_EQ(delivered.size(), 1u);
  EXPECT_EQ(router.counters().policy_drops, 0u);
}

TEST_F(EdgeFixture, RoamedTrafficTriggersSmrAndForward) {
  // A frame arrives for an endpoint that is not here; we know (via
  // Map-Notify) that it moved to 10.0.0.30.
  lisp::MapNotify notify;
  notify.eid = VnEid{kVn, Eid{*Ipv4Address::parse("10.1.0.5")}};
  notify.rlocs = {net::Rloc{*Ipv4Address::parse("10.0.0.30")}};
  router.receive_map_notify(notify);

  net::FabricFrame frame;
  frame.outer_source = *Ipv4Address::parse("10.0.0.40");
  frame.outer_destination = router.rloc();
  frame.vn = kVn;
  frame.source_group = GroupId{10};
  frame.inner = udp_to(make_endpoint(9, "10.1.9.9", 10), "10.1.0.5");
  router.receive_fabric_frame(frame);

  ASSERT_EQ(smrs.size(), 1u);
  EXPECT_EQ(smrs[0].first, *Ipv4Address::parse("10.0.0.40"));
  EXPECT_EQ(smrs[0].second.eid, notify.eid);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].outer_destination, *Ipv4Address::parse("10.0.0.30"));
  EXPECT_EQ(router.counters().stale_forwards, 1u);
  // TTL must have been decremented on the stale-forward hop.
  EXPECT_EQ(sent[0].inner.ip().ttl, 63);
}

TEST_F(EdgeFixture, SmrIsRateLimitedPerEid) {
  lisp::MapNotify notify;
  notify.eid = VnEid{kVn, Eid{*Ipv4Address::parse("10.1.0.5")}};
  notify.rlocs = {net::Rloc{*Ipv4Address::parse("10.0.0.30")}};
  router.receive_map_notify(notify);

  net::FabricFrame frame;
  frame.outer_source = *Ipv4Address::parse("10.0.0.40");
  frame.outer_destination = router.rloc();
  frame.vn = kVn;
  frame.inner = udp_to(make_endpoint(9, "10.1.9.9", 10), "10.1.0.5");
  for (int i = 0; i < 5; ++i) router.receive_fabric_frame(frame);
  EXPECT_EQ(smrs.size(), 1u);
  EXPECT_EQ(router.counters().smr_sent, 1u);
}

TEST_F(EdgeFixture, UnknownTrafficFromBorderIsDroppedNotBounced) {
  net::FabricFrame frame;
  frame.outer_source = *Ipv4Address::parse("10.0.0.1");  // the border
  frame.outer_destination = router.rloc();
  frame.vn = kVn;
  frame.inner = udp_to(make_endpoint(9, "10.1.9.9", 10), "10.1.0.5");
  router.receive_fabric_frame(frame);
  EXPECT_TRUE(sent.empty());  // no bounce-back loop (§5.2)
  EXPECT_EQ(router.counters().no_route_drops, 1u);
}

TEST_F(EdgeFixture, TtlExhaustionDropsLoopingFrame) {
  net::FabricFrame frame;
  frame.outer_source = *Ipv4Address::parse("10.0.0.40");
  frame.outer_destination = router.rloc();
  frame.vn = kVn;
  frame.inner = udp_to(make_endpoint(9, "10.1.9.9", 10), "10.1.0.5");
  frame.inner.ip().ttl = 1;
  router.receive_fabric_frame(frame);
  EXPECT_TRUE(sent.empty());
  EXPECT_EQ(router.counters().ttl_drops, 1u);
}

TEST_F(EdgeFixture, SmrInvalidatesCacheAndReResolves) {
  install_remote("10.1.7.7", "10.0.0.20");
  EXPECT_EQ(router.fib_size(), 1u);
  router.receive_smr(lisp::SolicitMapRequest{
      VnEid{kVn, Eid{*Ipv4Address::parse("10.1.7.7")}}, *Ipv4Address::parse("10.0.0.20")});
  EXPECT_EQ(router.fib_size(), 0u);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_TRUE(requests[0].smr_invoked);
  EXPECT_EQ(router.counters().smr_received, 1u);
}

TEST_F(EdgeFixture, RlocOutagePurgesAffectedEntries) {
  install_remote("10.1.7.7", "10.0.0.20");
  install_remote("10.1.7.8", "10.0.0.20");
  install_remote("10.1.7.9", "10.0.0.30");
  router.on_rloc_reachability(*Ipv4Address::parse("10.0.0.20"), false);
  EXPECT_EQ(router.fib_size(), 1u);
  EXPECT_EQ(router.counters().rloc_fallbacks, 2u);
  // Reachability restoration alone changes nothing (re-registration does).
  router.on_rloc_reachability(*Ipv4Address::parse("10.0.0.20"), true);
  EXPECT_EQ(router.fib_size(), 1u);
}

TEST_F(EdgeFixture, AccessVlanValidatedStrippedAndReapplied) {
  // Sender on VLAN 100, receiver on VLAN 200, same edge.
  AttachedEndpoint a = make_endpoint(1, "10.1.0.5", 30);
  a.vlan = 100;
  AttachedEndpoint b = make_endpoint(2, "10.1.0.6", 30);
  b.vlan = 200;
  router.attach_endpoint(a);
  router.attach_endpoint(b);

  net::OverlayFrame frame = udp_to(a, "10.1.0.6");
  frame.vlan_id = 100;  // correctly tagged for a's port
  router.endpoint_transmit(a.mac, frame);
  ASSERT_EQ(delivered.size(), 1u);
  // Delivered with the *destination* port's VLAN, not the source's.
  EXPECT_EQ(delivered[0].second.vlan_id, 200);

  // Mis-tagged and untagged frames on a tagged port are dropped.
  frame.vlan_id = 999;
  router.endpoint_transmit(a.mac, frame);
  frame.vlan_id.reset();
  router.endpoint_transmit(a.mac, frame);
  EXPECT_EQ(router.counters().vlan_drops, 2u);
  EXPECT_EQ(delivered.size(), 1u);

  // A tagged frame on an untagged port is dropped too.
  const auto c = make_endpoint(3, "10.1.0.7", 30);
  router.attach_endpoint(c);
  net::OverlayFrame from_c = udp_to(c, "10.1.0.5");
  from_c.vlan_id = 100;
  router.endpoint_transmit(c.mac, from_c);
  EXPECT_EQ(router.counters().vlan_drops, 3u);
}

TEST_F(EdgeFixture, VlanTagNeverEntersTheOverlay) {
  AttachedEndpoint a = make_endpoint(1, "10.1.0.5", 20);
  a.vlan = 100;
  router.attach_endpoint(a);
  install_remote("10.1.7.7", "10.0.0.20");
  net::OverlayFrame frame = udp_to(a, "10.1.7.7");
  frame.vlan_id = 100;
  router.endpoint_transmit(a.mac, frame);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_FALSE(sent[0].inner.vlan_id.has_value());  // stripped at ingress
}

TEST_F(EdgeFixture, MapRequestRetransmitsUntilAnswered) {
  const auto e = make_endpoint(1, "10.1.0.5", 20);
  router.attach_endpoint(e);
  router.endpoint_transmit(e.mac, udp_to(e, "10.1.7.7"));
  ASSERT_EQ(requests.size(), 1u);

  // No reply: one retransmission per timeout, with fresh nonces.
  sim.run_until(sim.now() + std::chrono::milliseconds{1100});
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_NE(requests[1].nonce, requests[0].nonce);
  EXPECT_EQ(requests[1].eid, requests[0].eid);
  sim.run();  // drain all retries (config default: 3)
  EXPECT_EQ(requests.size(), 4u);
  EXPECT_EQ(router.counters().map_request_retries, 3u);

  // Retries exhausted: a later packet can retrigger resolution.
  router.endpoint_transmit(e.mac, udp_to(e, "10.1.7.7"));
  EXPECT_EQ(requests.size(), 5u);
}

TEST_F(EdgeFixture, MapReplyCancelsRetransmission) {
  const auto e = make_endpoint(1, "10.1.0.5", 20);
  router.attach_endpoint(e);
  router.endpoint_transmit(e.mac, udp_to(e, "10.1.7.7"));
  ASSERT_EQ(requests.size(), 1u);
  install_remote("10.1.7.7", "10.0.0.20");  // the reply arrives
  sim.run();
  EXPECT_EQ(requests.size(), 1u);  // timer found nothing pending
  EXPECT_EQ(router.counters().map_request_retries, 0u);
}

TEST_F(EdgeFixture, NoDefaultRouteModeDropsWhileResolving) {
  EdgeRouterConfig cfg = make_config();
  cfg.default_route_fallback = false;
  EdgeRouter classic{sim, cfg};
  std::vector<net::FabricFrame> out;
  std::vector<lisp::MapRequest> reqs;
  classic.set_send_data([&](const net::FabricFrame& f) { out.push_back(f); });
  classic.set_send_map_request([&](const lisp::MapRequest& r) { reqs.push_back(r); });
  const auto e = make_endpoint(1, "10.1.0.5", 20);
  classic.attach_endpoint(e);

  classic.endpoint_transmit(e.mac, udp_to(e, "10.1.7.7"));
  EXPECT_TRUE(out.empty());  // dropped, not default-routed
  EXPECT_EQ(classic.counters().resolution_drops, 1u);
  EXPECT_EQ(reqs.size(), 1u);

  // Once resolved, traffic flows directly.
  lisp::MapReply reply;
  reply.eid = VnEid{kVn, Eid{*Ipv4Address::parse("10.1.7.7")}};
  reply.rlocs = {net::Rloc{*Ipv4Address::parse("10.0.0.20")}};
  classic.receive_map_reply(reply);
  classic.endpoint_transmit(e.mac, udp_to(e, "10.1.7.7"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].outer_destination, *Ipv4Address::parse("10.0.0.20"));
}

TEST_F(EdgeFixture, DeadRlocMappingBypassedViaBorder) {
  const auto e = make_endpoint(1, "10.1.0.5", 20);
  router.attach_endpoint(e);
  router.on_rloc_reachability(*Ipv4Address::parse("10.0.0.20"), false);
  // A (re-)resolution may still hand back the dead RLOC until the endpoint
  // re-registers; the edge must not blackhole into it.
  install_remote("10.1.7.7", "10.0.0.20");
  router.endpoint_transmit(e.mac, udp_to(e, "10.1.7.7"));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].outer_destination, *Ipv4Address::parse("10.0.0.1"));  // border
  EXPECT_EQ(router.counters().default_routed, 1u);

  // Once the IGP reports the RLOC back, the mapping is usable again.
  router.on_rloc_reachability(*Ipv4Address::parse("10.0.0.20"), true);
  router.endpoint_transmit(e.mac, udp_to(e, "10.1.7.7"));
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[1].outer_destination, *Ipv4Address::parse("10.0.0.20"));
}

TEST_F(EdgeFixture, IngressEnforcementAblation) {
  EdgeRouterConfig cfg = make_config();
  cfg.enforce_on_ingress = true;
  EdgeRouter ingress_router{sim, cfg};
  std::vector<net::FabricFrame> out;
  ingress_router.set_send_data([&](const net::FabricFrame& f) { out.push_back(f); });
  ingress_router.set_download_rules([](VnId, GroupId dst) {
    if (dst == GroupId{20}) {
      return std::vector<policy::Rule>{{{GroupId{10}, GroupId{20}}, Action::Deny}};
    }
    return std::vector<policy::Rule>{};
  });

  const auto a = make_endpoint(1, "10.1.0.5", 10);
  ingress_router.attach_endpoint(a);
  // Remote destination known to be group 20 via the map reply.
  lisp::MapReply reply;
  reply.eid = VnEid{kVn, Eid{*Ipv4Address::parse("10.1.7.7")}};
  reply.rlocs = {net::Rloc{*Ipv4Address::parse("10.0.0.20")}};
  reply.group = 20;
  ingress_router.receive_map_reply(reply);
  // Ingress needs the rule for destination group 20 even though no local
  // endpoint belongs to it — that is exactly the §5.3 state-cost argument.
  ingress_router.install_rules(kVn, GroupId{20},
                               {{{GroupId{10}, GroupId{20}}, Action::Deny}});

  ingress_router.endpoint_transmit(a.mac, udp_to(a, "10.1.7.7"));
  EXPECT_TRUE(out.empty());  // dropped at ingress: bandwidth saved
  EXPECT_EQ(ingress_router.counters().policy_drops, 1u);
}

TEST_F(EdgeFixture, RetagEndpointUpdatesVrfAndReregisters) {
  router.attach_endpoint(make_endpoint(1, "10.1.0.5", 20));
  const auto before = registers.size();
  EXPECT_TRUE(router.retag_endpoint(MacAddress::from_u64(1), GroupId{25}));
  const VnEid eid{kVn, Eid{*Ipv4Address::parse("10.1.0.5")}};
  EXPECT_EQ(router.vrf().lookup(eid)->group, GroupId{25});
  EXPECT_EQ(registers.size(), before + 1);
  EXPECT_EQ(registers.back().group, 25);
  ASSERT_EQ(released.size(), 1u);  // old group 20 freed
  EXPECT_EQ(released[0], GroupId{20});
  EXPECT_FALSE(router.retag_endpoint(MacAddress::from_u64(9), GroupId{25}));
}

TEST_F(EdgeFixture, RebootLosesAllState) {
  const auto e = make_endpoint(1, "10.1.0.5", 20);
  router.attach_endpoint(e);
  install_remote("10.1.7.7", "10.0.0.20");
  router.reboot();
  EXPECT_EQ(router.endpoint_count(), 0u);
  EXPECT_EQ(router.fib_size(), 0u);
  EXPECT_EQ(router.vrf().size(), 0u);
  EXPECT_EQ(router.sgacl().rule_count(), 0u);
  // Traffic for its former endpoint now triggers the §5.2 recovery path.
  net::FabricFrame frame;
  frame.outer_source = *Ipv4Address::parse("10.0.0.40");
  frame.outer_destination = router.rloc();
  frame.vn = kVn;
  frame.inner = udp_to(make_endpoint(9, "10.1.9.9", 10), "10.1.0.5");
  router.receive_fabric_frame(frame);
  EXPECT_EQ(smrs.size(), 1u);
}

TEST_F(EdgeFixture, NegativeCacheEntryStillDefaultRoutes) {
  const auto e = make_endpoint(1, "10.1.0.5", 20);
  router.attach_endpoint(e);
  lisp::MapReply negative;
  negative.eid = VnEid{kVn, Eid{*Ipv4Address::parse("10.1.7.7")}};
  negative.action = lisp::MapReplyAction::NativelyForward;
  negative.ttl_seconds = 60;
  router.receive_map_reply(negative);

  router.endpoint_transmit(e.mac, udp_to(e, "10.1.7.7"));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].outer_destination, *Ipv4Address::parse("10.0.0.1"));
  EXPECT_TRUE(requests.empty());  // negative entry suppresses re-resolution
}

TEST(RetryJitter, ShedRetriesSpreadAcrossEdges) {
  // Eight edges shed at the same instant with the same retry-after hint
  // must not retry in lockstep — the whole point of shedding was to break
  // up the stampede, and synchronized retries would rebuild it. The
  // decorrelated jitter spreads retransmits across [hint, 3*hint), never
  // earlier than the server asked.
  sim::Simulator sim;
  constexpr auto kHint = std::chrono::milliseconds{100};
  constexpr int kEdges = 8;
  std::vector<std::unique_ptr<EdgeRouter>> routers;
  std::vector<int> sends(kEdges, 0);
  std::vector<sim::SimTime> retry_at(kEdges);
  for (int i = 0; i < kEdges; ++i) {
    EdgeRouterConfig cfg;
    cfg.name = "edge-" + std::to_string(i);
    cfg.rloc = *Ipv4Address::parse(("10.0.0." + std::to_string(10 + i)).c_str());
    cfg.border_rloc = *Ipv4Address::parse("10.0.0.1");
    cfg.map_register_retries = 3;
    auto r = std::make_unique<EdgeRouter>(sim, cfg);
    r->set_send_data([](const net::FabricFrame&) {});
    r->set_send_map_register([&sim, &sends, &retry_at, i](const lisp::MapRegister&) {
      if (++sends[static_cast<std::size_t>(i)] == 2) {
        retry_at[static_cast<std::size_t>(i)] = sim.now();  // the jittered retry
      }
    });
    r->set_download_rules([](VnId, GroupId) { return std::vector<policy::Rule>{}; });
    routers.push_back(std::move(r));
  }
  for (int i = 0; i < kEdges; ++i) {
    AttachedEndpoint e;
    e.mac = MacAddress::from_u64(static_cast<std::uint64_t>(i + 1));
    e.ip = *Ipv4Address::parse(("10.1.0." + std::to_string(i + 1)).c_str());
    e.vn = kVn;
    e.group = GroupId{10};
    e.port = 1;
    e.credential = "ep-" + std::to_string(i);
    routers[static_cast<std::size_t>(i)]->attach_endpoint(e);
    // The fanned-out shed: every edge hears the same retry-after at t=0.
    routers[static_cast<std::size_t>(i)]->receive_map_register_busy(
        VnEid{kVn, net::Eid{e.ip}}, kHint);
  }
  sim.run_until(sim.now() + std::chrono::seconds{1});

  std::set<sim::SimTime> distinct;
  for (int i = 0; i < kEdges; ++i) {
    ASSERT_GE(sends[static_cast<std::size_t>(i)], 2) << "edge " << i << " never retried";
    const auto delay = retry_at[static_cast<std::size_t>(i)] - sim::SimTime{};
    EXPECT_GE(delay, sim::Duration{kHint}) << "edge " << i << " retried before the hint";
    EXPECT_LT(delay, sim::Duration{kHint} * 3) << "edge " << i << " over-delayed";
    distinct.insert(retry_at[static_cast<std::size_t>(i)]);
  }
  // Spread, not lockstep: the retry instants must actually differ.
  EXPECT_GE(distinct.size(), 4u) << "shed retries re-synchronized";
}

TEST(RetryJitter, DisabledJitterHonorsExactHint) {
  // With retransmit_jitter off the retry fires exactly at the server's
  // hint — the deterministic baseline older tests and reproductions rely
  // on.
  sim::Simulator sim;
  EdgeRouterConfig cfg;
  cfg.name = "edge-0";
  cfg.rloc = *Ipv4Address::parse("10.0.0.10");
  cfg.border_rloc = *Ipv4Address::parse("10.0.0.1");
  cfg.map_register_retries = 3;
  cfg.retransmit_jitter = false;
  EdgeRouter router{sim, cfg};
  int sends = 0;
  sim::SimTime retry_at;
  router.set_send_data([](const net::FabricFrame&) {});
  router.set_send_map_register([&](const lisp::MapRegister&) {
    if (++sends == 2) retry_at = sim.now();
  });
  router.set_download_rules([](VnId, GroupId) { return std::vector<policy::Rule>{}; });

  AttachedEndpoint e;
  e.mac = MacAddress::from_u64(1);
  e.ip = *Ipv4Address::parse("10.1.0.5");
  e.vn = kVn;
  e.group = GroupId{10};
  e.port = 1;
  e.credential = "ep-1";
  router.attach_endpoint(e);
  router.receive_map_register_busy(VnEid{kVn, net::Eid{e.ip}},
                                   std::chrono::milliseconds{100});
  sim.run_until(sim.now() + std::chrono::seconds{1});
  ASSERT_EQ(sends, 2);
  EXPECT_EQ(retry_at - sim::SimTime{}, sim::Duration{std::chrono::milliseconds{100}});
}

}  // namespace
}  // namespace sda::dataplane
