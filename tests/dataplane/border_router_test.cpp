#include "dataplane/border_router.hpp"

#include <gtest/gtest.h>

namespace sda::dataplane {
namespace {

using net::Eid;
using net::GroupId;
using net::Ipv4Address;
using net::MacAddress;
using net::OverlayFrame;
using net::VnEid;
using net::VnId;

constexpr VnId kVn{100};

struct BorderFixture : ::testing::Test {
  BorderFixture() : border(sim, make_config()) {
    border.set_send_data([this](const net::FabricFrame& f) { sent.push_back(f); });
    border.set_deliver_external([this](const VnEid& d, const OverlayFrame& f) {
      external.emplace_back(d, f);
    });
  }

  static BorderRouterConfig make_config() {
    BorderRouterConfig cfg;
    cfg.name = "border-0";
    cfg.rloc = *Ipv4Address::parse("10.0.0.1");
    return cfg;
  }

  static OverlayFrame udp(const char* src, const char* dst, std::uint8_t ttl = 64) {
    OverlayFrame frame;
    frame.source_mac = MacAddress::from_u64(0x02AA);
    frame.destination_mac = MacAddress::from_u64(0x02BB);
    net::Ipv4Datagram dgram;
    dgram.source = *Ipv4Address::parse(src);
    dgram.destination = *Ipv4Address::parse(dst);
    dgram.payload_size = 64;
    dgram.ttl = ttl;
    frame.l3 = dgram;
    return frame;
  }

  static net::FabricFrame fabric(const char* from_rloc, const OverlayFrame& inner) {
    net::FabricFrame f;
    f.outer_source = *Ipv4Address::parse(from_rloc);
    f.outer_destination = *Ipv4Address::parse("10.0.0.1");
    f.vn = kVn;
    f.source_group = GroupId{10};
    f.inner = inner;
    return f;
  }

  void publish(const char* ip, const char* rloc) {
    lisp::Publish p;
    p.eid = VnEid{kVn, Eid{*Ipv4Address::parse(ip)}};
    p.rlocs = {net::Rloc{*Ipv4Address::parse(rloc)}};
    border.receive_publish(p);
  }

  sim::Simulator sim;
  BorderRouter border;
  std::vector<net::FabricFrame> sent;
  std::vector<std::pair<VnEid, OverlayFrame>> external;
};

TEST_F(BorderFixture, PublishInstallsAndWithdrawRemoves) {
  publish("10.1.0.5", "10.0.0.20");
  EXPECT_EQ(border.fib_size(), 1u);
  EXPECT_EQ(border.counters().publishes_applied, 1u);

  lisp::Publish withdrawal;
  withdrawal.eid = VnEid{kVn, Eid{*Ipv4Address::parse("10.1.0.5")}};
  border.receive_publish(withdrawal);
  EXPECT_EQ(border.fib_size(), 0u);
  EXPECT_EQ(border.counters().withdrawals_applied, 1u);
}

TEST_F(BorderFixture, HairpinsDefaultRoutedTraffic) {
  publish("10.1.0.5", "10.0.0.20");
  border.receive_fabric_frame(fabric("10.0.0.30", udp("10.1.9.9", "10.1.0.5")));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].outer_destination, *Ipv4Address::parse("10.0.0.20"));
  EXPECT_EQ(sent[0].outer_source, border.rloc());
  EXPECT_EQ(sent[0].vn, kVn);
  EXPECT_EQ(border.counters().hairpinned, 1u);
  EXPECT_EQ(sent[0].inner.ip().ttl, 63);  // decremented on hairpin
}

TEST_F(BorderFixture, TtlGuardStopsLoops) {
  publish("10.1.0.5", "10.0.0.20");
  border.receive_fabric_frame(fabric("10.0.0.30", udp("10.1.9.9", "10.1.0.5", 1)));
  EXPECT_TRUE(sent.empty());
  EXPECT_EQ(border.counters().ttl_drops, 1u);
}

TEST_F(BorderFixture, ExternalTrafficLeavesFabric) {
  border.add_external_prefix(kVn, *net::Ipv4Prefix::parse("0.0.0.0/0"));
  border.receive_fabric_frame(fabric("10.0.0.30", udp("10.1.9.9", "8.8.8.8")));
  ASSERT_EQ(external.size(), 1u);
  EXPECT_EQ(external[0].first.eid.ipv4(), *Ipv4Address::parse("8.8.8.8"));
  EXPECT_EQ(border.counters().external_out, 1u);
}

TEST_F(BorderFixture, OverlayRouteBeatsExternalPrefix) {
  border.add_external_prefix(kVn, *net::Ipv4Prefix::parse("0.0.0.0/0"));
  publish("10.1.0.5", "10.0.0.20");
  border.receive_fabric_frame(fabric("10.0.0.30", udp("10.1.9.9", "10.1.0.5")));
  EXPECT_TRUE(external.empty());
  EXPECT_EQ(sent.size(), 1u);
}

TEST_F(BorderFixture, UnroutableTrafficDropped) {
  border.receive_fabric_frame(fabric("10.0.0.30", udp("10.1.9.9", "10.1.0.5")));
  EXPECT_TRUE(sent.empty());
  EXPECT_TRUE(external.empty());
  EXPECT_EQ(border.counters().no_route_drops, 1u);
}

TEST_F(BorderFixture, ExternalInboundEncapsulatesToServingEdge) {
  publish("10.1.0.5", "10.0.0.20");
  border.external_receive(kVn, GroupId{50}, udp("8.8.8.8", "10.1.0.5"));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].outer_destination, *Ipv4Address::parse("10.0.0.20"));
  EXPECT_EQ(sent[0].source_group, GroupId{50});
  EXPECT_EQ(border.counters().external_in, 1u);
}

TEST_F(BorderFixture, ExternalInboundUnknownDestinationDropped) {
  border.external_receive(kVn, GroupId{50}, udp("8.8.8.8", "10.1.0.5"));
  EXPECT_TRUE(sent.empty());
  EXPECT_EQ(border.counters().no_route_drops, 1u);
}

TEST_F(BorderFixture, EgressPolicyAtExternalBoundary) {
  border.add_external_prefix(kVn, *net::Ipv4Prefix::parse("0.0.0.0/0"), GroupId{60});
  border.sgacl().install_rule(kVn, {{GroupId{10}, GroupId{60}}, policy::Action::Deny});
  border.receive_fabric_frame(fabric("10.0.0.30", udp("10.1.9.9", "8.8.8.8")));
  EXPECT_TRUE(external.empty());
  EXPECT_EQ(border.counters().policy_drops, 1u);
}

TEST_F(BorderFixture, BootstrapSyncCopiesServerState) {
  lisp::MapServer server;
  for (std::uint32_t i = 0; i < 10; ++i) {
    lisp::MappingRecord record;
    record.rlocs = {net::Rloc{*Ipv4Address::parse("10.0.0.20")}};
    server.register_mapping(VnEid{kVn, Eid{Ipv4Address{0x0A010000u + i}}}, record);
  }
  border.bootstrap_sync(server);
  EXPECT_EQ(border.fib_size(), 10u);
}

TEST_F(BorderFixture, ArpNeverCrossesBorder) {
  OverlayFrame arp_frame;
  arp_frame.source_mac = MacAddress::from_u64(0x02AA);
  arp_frame.destination_mac = MacAddress::broadcast();
  arp_frame.l3 = net::ArpPacket{};
  border.receive_fabric_frame(fabric("10.0.0.30", arp_frame));
  EXPECT_TRUE(sent.empty());
  EXPECT_EQ(border.counters().no_route_drops, 1u);
}

TEST_F(BorderFixture, ServiceInsertionRewritesGroupOnTransit) {
  publish("10.1.0.5", "10.0.0.20");
  // §5.4 service insertion: re-tag group 10 as group 99 through this hop
  // so downstream devices apply the service-chain policy.
  border.add_group_rewrite(kVn, GroupId{10}, GroupId{99});
  border.receive_fabric_frame(fabric("10.0.0.30", udp("10.1.9.9", "10.1.0.5")));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].source_group, GroupId{99});
  EXPECT_EQ(border.counters().group_rewrites, 1u);
}

TEST_F(BorderFixture, ServiceInsertionScopedToVnAndGroup) {
  publish("10.1.0.5", "10.0.0.20");
  border.add_group_rewrite(net::VnId{999}, GroupId{10}, GroupId{99});  // other VN
  border.add_group_rewrite(kVn, GroupId{55}, GroupId{99});             // other group
  border.receive_fabric_frame(fabric("10.0.0.30", udp("10.1.9.9", "10.1.0.5")));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].source_group, GroupId{10});  // untouched
  EXPECT_EQ(border.counters().group_rewrites, 0u);
}

TEST_F(BorderFixture, ServiceInsertionRemovable) {
  border.add_group_rewrite(kVn, GroupId{10}, GroupId{99});
  EXPECT_TRUE(border.remove_group_rewrite(kVn, GroupId{10}));
  EXPECT_FALSE(border.remove_group_rewrite(kVn, GroupId{10}));
  publish("10.1.0.5", "10.0.0.20");
  border.receive_fabric_frame(fabric("10.0.0.30", udp("10.1.9.9", "10.1.0.5")));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].source_group, GroupId{10});
}

TEST_F(BorderFixture, RewrittenGroupDrivesBorderEgressPolicy) {
  // Traffic re-tagged into a group that the border's own external SGACL
  // denies: the service chain decides the policy, as §5.4 describes.
  border.add_external_prefix(kVn, *net::Ipv4Prefix::parse("0.0.0.0/0"), GroupId{60});
  border.add_group_rewrite(kVn, GroupId{10}, GroupId{77});
  border.sgacl().install_rule(kVn, {{GroupId{77}, GroupId{60}}, policy::Action::Deny});
  border.receive_fabric_frame(fabric("10.0.0.30", udp("10.1.9.9", "8.8.8.8")));
  EXPECT_TRUE(external.empty());
  EXPECT_EQ(border.counters().policy_drops, 1u);
}

TEST_F(BorderFixture, StaleSelfRouteDropped) {
  // The synced table claims the EID is behind this very border (e.g. a
  // stale registration after an external prefix removal): do not loop.
  publish("10.1.0.5", "10.0.0.1");
  border.receive_fabric_frame(fabric("10.0.0.30", udp("10.1.9.9", "10.1.0.5")));
  EXPECT_TRUE(sent.empty());
  EXPECT_EQ(border.counters().no_route_drops, 1u);
}

}  // namespace
}  // namespace sda::dataplane
