#include "dataplane/sgacl.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace sda::dataplane {
namespace {

using net::GroupId;
using net::VnId;
using policy::Action;
using policy::Rule;

Rule rule(std::uint16_t src, std::uint16_t dst, Action action) {
  return Rule{{GroupId{src}, GroupId{dst}}, action};
}

TEST(Sgacl, DefaultActionWhenNoRule) {
  Sgacl allow{Action::Allow};
  EXPECT_EQ(allow.evaluate(VnId{1}, GroupId{1}, GroupId{2}), Action::Allow);
  Sgacl deny{Action::Deny};
  EXPECT_EQ(deny.evaluate(VnId{1}, GroupId{1}, GroupId{2}), Action::Deny);
}

TEST(Sgacl, ExactMatchRuleApplies) {
  Sgacl sgacl{Action::Allow};
  sgacl.install_destination_rules(VnId{1}, GroupId{9},
                                  {rule(1, 9, Action::Deny), rule(2, 9, Action::Allow)});
  EXPECT_EQ(sgacl.evaluate(VnId{1}, GroupId{1}, GroupId{9}), Action::Deny);
  EXPECT_EQ(sgacl.evaluate(VnId{1}, GroupId{2}, GroupId{9}), Action::Allow);
  EXPECT_EQ(sgacl.evaluate(VnId{1}, GroupId{3}, GroupId{9}), Action::Allow);  // default
  EXPECT_EQ(sgacl.rule_count(), 2u);
}

TEST(Sgacl, VnScopesRules) {
  Sgacl sgacl{Action::Allow};
  sgacl.install_destination_rules(VnId{1}, GroupId{9}, {rule(1, 9, Action::Deny)});
  EXPECT_EQ(sgacl.evaluate(VnId{2}, GroupId{1}, GroupId{9}), Action::Allow);
}

TEST(Sgacl, UnknownGroupsAlwaysPass) {
  Sgacl sgacl{Action::Deny};
  EXPECT_EQ(sgacl.evaluate(VnId{1}, GroupId::unknown(), GroupId{9}), Action::Allow);
  EXPECT_EQ(sgacl.evaluate(VnId{1}, GroupId{9}, GroupId::unknown()), Action::Allow);
}

TEST(Sgacl, InstallReplacesDestinationRuleSet) {
  Sgacl sgacl{Action::Allow};
  sgacl.install_destination_rules(VnId{1}, GroupId{9},
                                  {rule(1, 9, Action::Deny), rule(2, 9, Action::Deny)});
  sgacl.install_destination_rules(VnId{1}, GroupId{9}, {rule(3, 9, Action::Deny)});
  EXPECT_EQ(sgacl.rule_count(), 1u);
  EXPECT_EQ(sgacl.evaluate(VnId{1}, GroupId{1}, GroupId{9}), Action::Allow);
  EXPECT_EQ(sgacl.evaluate(VnId{1}, GroupId{3}, GroupId{9}), Action::Deny);
}

TEST(Sgacl, RemoveDestinationRules) {
  Sgacl sgacl{Action::Allow};
  sgacl.install_destination_rules(VnId{1}, GroupId{9}, {rule(1, 9, Action::Deny)});
  sgacl.install_destination_rules(VnId{1}, GroupId{8}, {rule(1, 8, Action::Deny)});
  sgacl.remove_destination_rules(VnId{1}, GroupId{9});
  EXPECT_EQ(sgacl.rule_count(), 1u);
  EXPECT_EQ(sgacl.evaluate(VnId{1}, GroupId{1}, GroupId{9}), Action::Allow);
  EXPECT_EQ(sgacl.evaluate(VnId{1}, GroupId{1}, GroupId{8}), Action::Deny);
}

TEST(Sgacl, CountersTrackPermitsAndDrops) {
  Sgacl sgacl{Action::Allow};
  sgacl.install_destination_rules(VnId{1}, GroupId{9}, {rule(1, 9, Action::Deny)});
  (void)sgacl.evaluate(VnId{1}, GroupId{1}, GroupId{9});  // drop
  (void)sgacl.evaluate(VnId{1}, GroupId{2}, GroupId{9});  // permit
  (void)sgacl.evaluate(VnId{1}, GroupId{2}, GroupId{9});  // permit
  EXPECT_EQ(sgacl.counters().drops, 1u);
  EXPECT_EQ(sgacl.counters().permits, 2u);
  EXPECT_EQ(sgacl.counters().total(), 3u);
  EXPECT_NEAR(sgacl.counters().drop_permille(), 333.3, 0.1);
  sgacl.reset_counters();
  EXPECT_EQ(sgacl.counters().total(), 0u);
  EXPECT_DOUBLE_EQ(sgacl.counters().drop_permille(), 0.0);
}

// Property: with every destination's rule set installed, the SGACL must
// produce exactly the connectivity matrix's verdict for every group pair —
// the egress pipeline is a faithful compilation of operator intent.
struct SgaclMatrixCase {
  std::uint64_t seed;
  unsigned groups;
  double deny_probability;
};

class SgaclMatrixEquivalence : public ::testing::TestWithParam<SgaclMatrixCase> {};

TEST_P(SgaclMatrixEquivalence, MatchesMatrixVerdicts) {
  const auto param = GetParam();
  sim::Rng rng{param.seed};
  policy::ConnectivityMatrix matrix{Action::Allow};
  for (std::uint16_t s = 1; s <= param.groups; ++s) {
    for (std::uint16_t d = 1; d <= param.groups; ++d) {
      if (rng.chance(param.deny_probability)) {
        matrix.set_rule(GroupId{s}, GroupId{d}, Action::Deny);
      } else if (rng.chance(0.1)) {
        matrix.set_rule(GroupId{s}, GroupId{d}, Action::Allow);  // explicit allow
      }
    }
  }

  Sgacl sgacl{matrix.default_action()};
  for (std::uint16_t d = 1; d <= param.groups; ++d) {
    sgacl.install_destination_rules(VnId{1}, GroupId{d},
                                    matrix.rules_for_destination(GroupId{d}));
  }

  for (std::uint16_t s = 0; s <= param.groups; ++s) {
    for (std::uint16_t d = 0; d <= param.groups; ++d) {
      EXPECT_EQ(sgacl.evaluate(VnId{1}, GroupId{s}, GroupId{d}),
                matrix.lookup(GroupId{s}, GroupId{d}))
          << "pair (" << s << ", " << d << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, SgaclMatrixEquivalence,
                         ::testing::Values(SgaclMatrixCase{1, 8, 0.2},
                                           SgaclMatrixCase{2, 16, 0.4},
                                           SgaclMatrixCase{3, 32, 0.1},
                                           SgaclMatrixCase{4, 32, 0.8}));

TEST(Sgacl, ClearRemovesAllRules) {
  Sgacl sgacl{Action::Allow};
  sgacl.install_rule(VnId{1}, rule(1, 9, Action::Deny));
  sgacl.clear();
  EXPECT_EQ(sgacl.rule_count(), 0u);
  EXPECT_EQ(sgacl.evaluate(VnId{1}, GroupId{1}, GroupId{9}), Action::Allow);
}

}  // namespace
}  // namespace sda::dataplane
