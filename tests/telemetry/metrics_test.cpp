#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include "telemetry/export.hpp"

namespace sda::telemetry {
namespace {

TEST(MetricsRegistry, JoinBuildsHierarchicalNames) {
  EXPECT_EQ(join("edge[3]", "map_cache.miss"), "edge[3].map_cache.miss");
  EXPECT_EQ(join("", "fabric.onboard_ms"), "fabric.onboard_ms");
}

TEST(MetricsRegistry, OwnedCellsAppearInSnapshot) {
  MetricsRegistry registry;
  Counter& c = registry.counter("edge[0].smr_sent");
  c.inc(3);
  ++c;
  registry.gauge("edge[0].fib_size").set(42.5);
  registry.histogram("fabric.first_packet_us", {0.0, 100.0, 10}).observe(25.0);

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("edge[0].smr_sent"), 4u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("edge[0].fib_size"), 42.5);
  const HistogramSnapshot& hist = snap.histograms.at("fabric.first_packet_us");
  EXPECT_EQ(hist.total, 1u);
  EXPECT_DOUBLE_EQ(hist.sum, 25.0);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, CellReferencesSurviveLaterRegistrations) {
  MetricsRegistry registry;
  Counter& first = registry.counter("a.first");
  for (int i = 0; i < 64; ++i) {
    registry.counter("b.filler" + std::to_string(i));
  }
  first.inc();
  EXPECT_EQ(registry.snapshot().counters.at("a.first"), 1u);
  // Same name returns the same cell, not a fresh one.
  registry.counter("a.first").inc();
  EXPECT_EQ(first.value(), 2u);
}

TEST(MetricsRegistry, ProbesSampleAtSnapshotTime) {
  MetricsRegistry registry;
  std::uint64_t hits = 0;
  double depth = 0;
  registry.register_counter("edge[1].map_cache.hits", [&hits] { return hits; });
  registry.register_gauge("server.queue_depth", [&depth] { return depth; });

  EXPECT_EQ(registry.snapshot().counters.at("edge[1].map_cache.hits"), 0u);
  hits = 17;
  depth = 3.5;
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("edge[1].map_cache.hits"), 17u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("server.queue_depth"), 3.5);
}

TEST(MetricsRegistry, DeltaSubtractsCountersAndKeepsGauges) {
  MetricsRegistry registry;
  std::uint64_t sent = 10;
  registry.register_counter("edge[0].registers_sent", [&sent] { return sent; });
  registry.gauge("edge[0].fib_size").set(5);
  LatencyHistogram& hist = registry.histogram("fabric.roam_ms", {0.0, 100.0, 10});
  hist.observe(10.0);

  const Snapshot before = registry.snapshot();
  sent = 25;
  registry.gauge("edge[0].fib_size").set(9);
  hist.observe(30.0);
  hist.observe(50.0);

  const Snapshot delta = registry.snapshot().delta(before);
  EXPECT_EQ(delta.counters.at("edge[0].registers_sent"), 15u);
  EXPECT_DOUBLE_EQ(delta.gauges.at("edge[0].fib_size"), 9.0);  // gauges: current value
  const HistogramSnapshot& dh = delta.histograms.at("fabric.roam_ms");
  EXPECT_EQ(dh.total, 2u);  // only the two samples since `before`
  EXPECT_DOUBLE_EQ(dh.sum, 80.0);
}

TEST(MetricsRegistry, DeltaSaturatesWhenSubsystemResets) {
  MetricsRegistry registry;
  std::uint64_t count = 100;
  registry.register_counter("edge[0].decapsulated", [&count] { return count; });
  const Snapshot before = registry.snapshot();
  count = 40;  // e.g. a reboot wiped the counters
  EXPECT_EQ(registry.snapshot().delta(before).counters.at("edge[0].decapsulated"), 0u);
}

TEST(MetricsRegistry, UnregisterPrefixRemovesNode) {
  MetricsRegistry registry;
  registry.counter("edge[0].a");
  registry.counter("edge[0].b");
  registry.counter("edge[1].a");
  registry.register_counter("edge[0].probe", [] { return std::uint64_t{1}; });
  EXPECT_EQ(registry.unregister_prefix("edge[0]."), 3u);
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.count("edge[0].a"), 0u);
  EXPECT_EQ(snap.counters.count("edge[1].a"), 1u);
}

TEST(HistogramSnapshot, MergeFoldsPerNodeHistograms) {
  // Two "edges" observing the same latency metric with identical specs.
  const HistogramSpec spec{0.0, 100.0, 10};
  MetricsRegistry ra, rb;
  ra.histogram("lat", spec).observe(5.0);
  ra.histogram("lat", spec).observe(15.0);
  rb.histogram("lat", spec).observe(15.0);
  rb.histogram("lat", spec).observe(95.0);
  rb.histogram("lat", spec).observe(250.0);  // overflow

  HistogramSnapshot merged = ra.snapshot().histograms.at("lat");
  ASSERT_TRUE(merged.merge(rb.snapshot().histograms.at("lat")));
  EXPECT_EQ(merged.total, 5u);
  EXPECT_EQ(merged.overflow, 1u);
  EXPECT_DOUBLE_EQ(merged.sum, 380.0);
  EXPECT_EQ(merged.counts[0], 1u);  // 5.0
  EXPECT_EQ(merged.counts[1], 2u);  // both 15.0 samples
  EXPECT_EQ(merged.counts[9], 1u);  // 95.0
  EXPECT_NEAR(merged.mean(), 76.0, 1e-9);
}

TEST(HistogramSnapshot, MergeRejectsMismatchedSpecs) {
  MetricsRegistry ra, rb;
  ra.histogram("lat", {0.0, 100.0, 10}).observe(1.0);
  rb.histogram("lat", {0.0, 200.0, 10}).observe(1.0);
  HistogramSnapshot a = ra.snapshot().histograms.at("lat");
  const HistogramSnapshot b = rb.snapshot().histograms.at("lat");
  EXPECT_FALSE(a.merge(b));
  EXPECT_EQ(a.total, 1u);  // unchanged
}

TEST(HistogramSnapshot, QuantileInterpolatesWithinBuckets) {
  MetricsRegistry registry;
  LatencyHistogram& hist = registry.histogram("lat", {0.0, 100.0, 10});
  for (int i = 0; i < 100; ++i) hist.observe(static_cast<double>(i));
  const HistogramSnapshot snap = registry.snapshot().histograms.at("lat");
  EXPECT_NEAR(snap.quantile(0.5), 50.0, 10.0 + 1e-9);  // within one bucket width
  EXPECT_LE(snap.quantile(0.1), snap.quantile(0.9));
  EXPECT_GE(snap.quantile(1.0), 90.0);
}

TEST(Exporters, JsonAndPrometheusRenderSnapshot) {
  MetricsRegistry registry;
  registry.counter("edge[2].map_cache.misses").inc(7);
  registry.gauge("fabric.endpoints").set(3);
  registry.histogram("fabric.onboard_ms", {0.0, 10.0, 2}).observe(4.0);
  const Snapshot snap = registry.snapshot();

  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"edge[2].map_cache.misses\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"total\": 1"), std::string::npos);

  const std::string prom = to_prometheus(snap);
  EXPECT_NE(prom.find("sda_edge_2_map_cache_misses 7"), std::string::npos);
  EXPECT_NE(prom.find("sda_fabric_onboard_ms_count 1"), std::string::npos);
  EXPECT_NE(prom.find("_bucket{le=\"+Inf\"} 1"), std::string::npos);
}

TEST(SnapshotMergeTest, SumsCountersGaugesAndHistogramsAcrossShards) {
  MetricsRegistry shard0;
  shard0.counter("lane.delivered").inc(10);
  shard0.gauge("lane.depth").set(2);
  shard0.histogram("lane.latency_us", {0.0, 100.0, 4}).observe(10.0);
  shard0.counter("lane.only_on_0").inc(1);

  MetricsRegistry shard1;
  shard1.counter("lane.delivered").inc(5);
  shard1.gauge("lane.depth").set(3);
  shard1.histogram("lane.latency_us", {0.0, 100.0, 4}).observe(60.0);
  shard1.counter("lane.only_on_1").inc(2);

  Snapshot merged = shard0.snapshot();
  merged.merge(shard1.snapshot());

  EXPECT_EQ(merged.counters.at("lane.delivered"), 15u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("lane.depth"), 5.0);
  EXPECT_EQ(merged.histograms.at("lane.latency_us").total, 2u);
  EXPECT_DOUBLE_EQ(merged.histograms.at("lane.latency_us").sum, 70.0);
  // Names union: metrics present on only one shard survive the fold.
  EXPECT_EQ(merged.counters.at("lane.only_on_0"), 1u);
  EXPECT_EQ(merged.counters.at("lane.only_on_1"), 2u);
}

TEST(SnapshotMergeTest, SpecMismatchKeepsLocalHistogram) {
  MetricsRegistry a;
  a.histogram("h", {0.0, 100.0, 4}).observe(10.0);
  MetricsRegistry b;
  b.histogram("h", {0.0, 200.0, 8}).observe(10.0);

  Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.histograms.at("h").total, 1u);  // local wins, no mixing
  EXPECT_EQ(merged.histograms.at("h").spec.buckets, 4u);
}

}  // namespace
}  // namespace sda::telemetry
