#include "telemetry/causal_trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sda::telemetry {
namespace {

sim::SimTime at_us(int us) { return sim::SimTime{} + std::chrono::microseconds{us}; }

TEST(CausalTracer, DisabledTracerIsInert) {
  CausalTracer tracer;
  ASSERT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.begin(OpKind::Register, "10.0.0.1", at_us(0)), 0u);
  // Every entry point early-outs on trace 0 — the untraced hot-path pattern.
  EXPECT_EQ(tracer.span_begin(0, 0, "map-register", "rs0", at_us(1)), 0u);
  tracer.span_end(0, 0, at_us(2));
  tracer.finish(0, at_us(3));
  tracer.abandon(0);
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.completed_count(), 0u);
}

TEST(CausalTracer, BeginDedupsByKindAndLabel) {
  CausalTracer tracer;
  tracer.set_enabled(true);
  const auto t1 = tracer.begin(OpKind::Register, "10.0.0.1", at_us(0));
  ASSERT_NE(t1, 0u);
  // A retransmitted registration reuses the open op; a different label or
  // kind opens a fresh one.
  EXPECT_EQ(tracer.begin(OpKind::Register, "10.0.0.1", at_us(5)), t1);
  EXPECT_NE(tracer.begin(OpKind::Register, "10.0.0.2", at_us(5)), t1);
  EXPECT_NE(tracer.begin(OpKind::Move, "10.0.0.1", at_us(5)), t1);
  EXPECT_EQ(tracer.open_count(), 3u);
  EXPECT_EQ(tracer.find_open(OpKind::Register, "10.0.0.1"), t1);
  EXPECT_EQ(tracer.find_open(OpKind::SmrFanout, "10.0.0.1"), 0u);
}

TEST(CausalTracer, SpanLifecycleAndNesting) {
  CausalTracer tracer;
  tracer.set_enabled(true);
  const auto trace = tracer.begin(OpKind::Move, "02:00:00:00:00:01", at_us(0));
  const auto outer = tracer.span_begin(trace, 0, "mobility-notify", "edge[0]", at_us(10));
  ASSERT_NE(outer, 0u);
  const auto inner = tracer.span_begin(trace, outer, "notify-ack", "edge[1]", at_us(20));
  ASSERT_NE(inner, 0u);
  tracer.span_end(trace, inner, at_us(30));
  tracer.span_end(trace, outer, at_us(40));
  tracer.finish(trace, at_us(50));

  ASSERT_EQ(tracer.completed().size(), 1u);
  const Operation& op = tracer.completed().back();
  EXPECT_EQ(op.kind, OpKind::Move);
  EXPECT_EQ(op.duration(), std::chrono::microseconds{50});
  ASSERT_EQ(op.spans.size(), 2u);
  EXPECT_EQ(op.spans[0].parent, 0u);
  EXPECT_EQ(op.spans[1].parent, outer);
  EXPECT_EQ(op.spans[1].node, "edge[1]");
  EXPECT_FALSE(op.spans[0].open);
  EXPECT_FALSE(op.spans[1].open);
}

TEST(CausalTracer, FinishClampsOpenSpansAndIsIdempotent) {
  CausalTracer tracer;
  tracer.set_enabled(true);
  const auto trace = tracer.begin(OpKind::SmrFanout, "10.0.0.1->edge[2]", at_us(0));
  tracer.span_begin(trace, 0, "smr", "edge[2]", at_us(5));  // never ended
  tracer.finish(trace, at_us(40));
  tracer.finish(trace, at_us(99));  // second ack: harmless no-op
  EXPECT_EQ(tracer.completed_count(), 1u);
  const Operation& op = tracer.completed().back();
  EXPECT_EQ(op.end, at_us(40));
  ASSERT_EQ(op.spans.size(), 1u);
  // The dangling span is clamped to the operation end, not left open.
  EXPECT_EQ(op.spans[0].end, at_us(40));
  EXPECT_FALSE(op.spans[0].open);
  // Spans on a finished trace are ignored.
  EXPECT_EQ(tracer.span_begin(trace, 0, "late", "edge[2]", at_us(50)), 0u);
}

TEST(CausalTracer, AbandonDropsWithoutCallbackOrRetention) {
  CausalTracer tracer;
  tracer.set_enabled(true);
  int completions = 0;
  tracer.set_completion_callback([&](const Operation&) { ++completions; });
  const auto trace = tracer.begin(OpKind::Register, "10.0.0.9", at_us(0));
  tracer.abandon(trace);
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.completed_count(), 0u);
  EXPECT_EQ(tracer.abandoned_count(), 1u);
  EXPECT_EQ(completions, 0);
  // The (kind, label) key is released: a new begin opens a distinct op.
  EXPECT_NE(tracer.begin(OpKind::Register, "10.0.0.9", at_us(10)), trace);
}

TEST(CausalTracer, CompletedRingIsBounded) {
  CausalTracer tracer{3};
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    const auto trace = tracer.begin(OpKind::Register, "eid-" + std::to_string(i), at_us(i));
    tracer.finish(trace, at_us(i + 1));
  }
  EXPECT_EQ(tracer.completed_count(), 10u);  // lifetime count keeps counting
  ASSERT_EQ(tracer.completed().size(), 3u);  // retention drops the oldest
  EXPECT_EQ(tracer.completed().front().label, "eid-7");
  EXPECT_EQ(tracer.completed().back().label, "eid-9");
}

TEST(CausalTracer, CompletionCallbackFiresWithFinalOp) {
  CausalTracer tracer;
  tracer.set_enabled(true);
  std::vector<OpKind> seen;
  sim::Duration last_duration{};
  tracer.set_completion_callback([&](const Operation& op) {
    seen.push_back(op.kind);
    last_duration = op.duration();
  });
  const auto trace = tracer.begin(OpKind::FailoverRehome, "epoch 2", at_us(100));
  tracer.finish(trace, at_us(350));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], OpKind::FailoverRehome);
  EXPECT_EQ(last_duration, std::chrono::microseconds{250});
}

TEST(CausalTracer, OpenLabelsReportLeaks) {
  CausalTracer tracer;
  tracer.set_enabled(true);
  tracer.begin(OpKind::Register, "10.0.0.1", at_us(0));
  tracer.begin(OpKind::Move, "02:aa", at_us(0));
  const auto labels = tracer.open_labels();
  ASSERT_EQ(labels.size(), 2u);
  // Labels are prefixed with the op kind for diagnostics.
  bool saw_register = false, saw_move = false;
  for (const auto& l : labels) {
    if (l.find("10.0.0.1") != std::string::npos) saw_register = true;
    if (l.find("02:aa") != std::string::npos) saw_move = true;
  }
  EXPECT_TRUE(saw_register);
  EXPECT_TRUE(saw_move);
}

TEST(CausalTracer, ChromeTraceJsonShape) {
  CausalTracer tracer;
  tracer.set_enabled(true);
  const auto trace = tracer.begin(OpKind::Register, "10.0.0.1", at_us(0));
  const auto span = tracer.span_begin(trace, 0, "map-register", "routing_server[0]", at_us(2));
  tracer.span_end(trace, span, at_us(8));
  tracer.finish(trace, at_us(10));

  const std::string json = tracer.to_chrome_trace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete events
  EXPECT_NE(json.find("\"map-register\""), std::string::npos);
  EXPECT_NE(json.find("10.0.0.1"), std::string::npos);
  // Deterministic: same tracer renders the same bytes.
  EXPECT_EQ(json, tracer.to_chrome_trace());
}

}  // namespace
}  // namespace sda::telemetry
