#include "telemetry/assurance.hpp"

#include <gtest/gtest.h>

#include <string>

#include "telemetry/metrics.hpp"

namespace sda::telemetry {
namespace {

Snapshot snapshot_with_latency(int fast, int slow) {
  MetricsRegistry reg;
  auto& hist = reg.histogram("assurance.smr_fanout_us", HistogramSpec{0.0, 100'000.0, 50});
  for (int i = 0; i < fast; ++i) hist.observe(1'000.0);
  for (int i = 0; i < slow; ++i) hist.observe(90'000.0);
  return reg.snapshot();
}

TEST(Assurance, SloPassesUnderThreshold) {
  AssuranceEngine engine;
  engine.add_slo({"smr-fanout-p95", "assurance.smr_fanout_us", 0.95, 20'000.0, true});
  const auto verdicts = engine.evaluate_slos(snapshot_with_latency(100, 0));
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].pass);
  EXPECT_EQ(verdicts[0].name, "smr-fanout-p95");
  EXPECT_NE(verdicts[0].detail.find("n="), std::string::npos);
}

TEST(Assurance, SloFailsWhenQuantileExceedsThreshold) {
  AssuranceEngine engine;
  engine.add_slo({"smr-fanout-p95", "assurance.smr_fanout_us", 0.95, 20'000.0, true});
  // 10% slow samples push p95 into the 90ms bucket.
  const auto verdicts = engine.evaluate_slos(snapshot_with_latency(90, 10));
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].pass);
  // A median SLO on the same data still holds — quantile is respected.
  AssuranceEngine median;
  median.add_slo({"smr-fanout-p50", "assurance.smr_fanout_us", 0.50, 20'000.0, true});
  EXPECT_TRUE(median.evaluate_slos(snapshot_with_latency(90, 10))[0].pass);
}

TEST(Assurance, MissingHistogramFails) {
  AssuranceEngine engine;
  engine.add_slo({"ghost-p95", "assurance.does_not_exist", 0.95, 1.0, false});
  const auto verdicts = engine.evaluate_slos(Snapshot{});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].pass);
}

TEST(Assurance, EmptyHistogramPassesVacuouslyUnlessSamplesRequired) {
  AssuranceEngine engine;
  engine.add_slo({"lenient", "assurance.smr_fanout_us", 0.95, 1.0, false});
  engine.add_slo({"strict", "assurance.smr_fanout_us", 0.95, 1.0, true});
  const auto verdicts = engine.evaluate_slos(snapshot_with_latency(0, 0));
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].pass) << verdicts[0].detail;
  EXPECT_FALSE(verdicts[1].pass) << verdicts[1].detail;
}

TEST(Assurance, InvariantReplaceByName) {
  AssuranceEngine engine;
  engine.add_invariant("no-leak", [] { return std::make_pair(false, "leaking"); });
  engine.add_invariant("no-leak", [] { return std::make_pair(true, "clean"); });
  EXPECT_EQ(engine.invariant_count(), 1u);
  const auto verdicts = engine.evaluate_invariants();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].pass);
  EXPECT_EQ(verdicts[0].detail, "clean");
}

TEST(Assurance, EvaluateCombinesInvariantsThenSlos) {
  AssuranceEngine engine;
  engine.add_invariant("always-true", [] { return std::make_pair(true, "ok"); });
  engine.add_slo({"smr-fanout-p95", "assurance.smr_fanout_us", 0.95, 20'000.0, true});
  const auto verdicts = engine.evaluate(snapshot_with_latency(10, 0));
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].name, "always-true");
  EXPECT_EQ(verdicts[1].name, "smr-fanout-p95");
  EXPECT_TRUE(AssuranceEngine::all_pass(verdicts));
}

TEST(Assurance, AllPassDetectsAnyFailure) {
  std::vector<Verdict> verdicts{{"a", true, ""}, {"b", false, "bad"}, {"c", true, ""}};
  EXPECT_FALSE(AssuranceEngine::all_pass(verdicts));
  verdicts[1].pass = true;
  EXPECT_TRUE(AssuranceEngine::all_pass(verdicts));
  EXPECT_TRUE(AssuranceEngine::all_pass({}));
}

TEST(Assurance, EmptyEngineEvaluatesToNothing) {
  AssuranceEngine engine;
  EXPECT_TRUE(engine.empty());
  EXPECT_TRUE(engine.evaluate(Snapshot{}).empty());
  engine.add_slo({"x", "h", 0.95, 1.0, false});
  EXPECT_FALSE(engine.empty());
  engine.clear_slos();
  EXPECT_TRUE(engine.empty());
}

}  // namespace
}  // namespace sda::telemetry
