#include "telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

namespace sda::telemetry {
namespace {

sim::SimTime at_ms(int ms) { return sim::SimTime{std::chrono::milliseconds{ms}}; }

TEST(FlightRecorder, RecordsEventsInOrder) {
  FlightRecorder recorder{16};
  recorder.record(at_ms(1), EventKind::MapRequest, "edge-0", "for 10.1.0.5");
  recorder.record(at_ms(2), EventKind::MapReply, "edge-0", "for 10.1.0.5");
  recorder.record(at_ms(3), EventKind::Smr, "edge-1");

  ASSERT_EQ(recorder.size(), 3u);
  const auto events = recorder.events();
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].kind, EventKind::MapRequest);
  EXPECT_EQ(events[2].seq, 3u);
  EXPECT_EQ(events[2].node, "edge-1");
  EXPECT_EQ(recorder.recorded(), 3u);
  EXPECT_EQ(recorder.overwritten(), 0u);
}

TEST(FlightRecorder, RingWrapsAroundKeepingNewest) {
  FlightRecorder recorder{4};
  for (int i = 1; i <= 10; ++i) {
    recorder.record(at_ms(i), EventKind::Publish, "map_server", std::to_string(i));
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.overwritten(), 6u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest -> newest: sequences 7, 8, 9, 10 survive.
  EXPECT_EQ(events.front().seq, 7u);
  EXPECT_EQ(events.back().seq, 10u);
  EXPECT_EQ(events.back().detail, "10");
}

TEST(FlightRecorder, TailReturnsNewestN) {
  FlightRecorder recorder{8};
  for (int i = 1; i <= 5; ++i) recorder.record(at_ms(i), EventKind::Onboard, "e0");
  const auto tail = recorder.tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 4u);
  EXPECT_EQ(tail[1].seq, 5u);
  // Asking for more than held clamps.
  EXPECT_EQ(recorder.tail(100).size(), 5u);
}

TEST(FlightRecorder, ForNodeScopesTheTimeline) {
  FlightRecorder recorder{8};
  recorder.record(at_ms(1), EventKind::Roam, "edge-0");
  recorder.record(at_ms(2), EventKind::Roam, "edge-1");
  recorder.record(at_ms(3), EventKind::Onboard, "edge-0");
  const auto scoped = recorder.for_node("edge-0");
  ASSERT_EQ(scoped.size(), 2u);
  EXPECT_EQ(scoped[0].kind, EventKind::Roam);
  EXPECT_EQ(scoped[1].kind, EventKind::Onboard);
}

TEST(FlightRecorder, DisabledRecorderDropsEverything) {
  FlightRecorder recorder{8};
  recorder.set_enabled(false);
  recorder.record(at_ms(1), EventKind::Fault, "faults", "link down");
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.recorded(), 0u);
  recorder.set_enabled(true);
  recorder.record(at_ms(2), EventKind::Fault, "faults", "link up");
  EXPECT_EQ(recorder.size(), 1u);
}

TEST(FlightRecorder, DumpMentionsOverwritesKindsAndNodes) {
  FlightRecorder recorder{2};
  recorder.record(at_ms(1), EventKind::MapRegister, "edge-0", "10.1.0.5");
  recorder.record(at_ms(2), EventKind::LinkState, "fabric", "e0 <-> b0 down");
  recorder.record(at_ms(3), EventKind::Resync, "border-0");
  const std::string dump = recorder.dump();
  EXPECT_NE(dump.find("(1 earlier events overwritten)"), std::string::npos);
  EXPECT_NE(dump.find("link-state fabric: e0 <-> b0 down"), std::string::npos);
  EXPECT_NE(dump.find("resync border-0"), std::string::npos);
  EXPECT_EQ(dump.find("map-register"), std::string::npos);  // overwritten
}

TEST(FlightRecorder, ClearResetsRing) {
  FlightRecorder recorder{4};
  for (int i = 0; i < 6; ++i) recorder.record(at_ms(i), EventKind::Custom, "n");
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.overwritten(), 0u);
  recorder.record(at_ms(9), EventKind::Custom, "n");
  EXPECT_EQ(recorder.events().front().seq, 1u);
}

TEST(FlightRecorder, ForNodeSurvivesWraparound) {
  // Per-node scoping must read through the ring, not a side index: after a
  // wrap, for_node returns exactly the surviving events for that node, in
  // order, with their original sequence numbers.
  FlightRecorder recorder{6};
  for (int i = 1; i <= 12; ++i) {
    const std::string node = (i % 2 == 0) ? "routing_server[0]" : "routing_server[1]";
    recorder.record(at_ms(i), EventKind::FeedState, node, "seq " + std::to_string(i));
  }
  // Sequences 7..12 survive; three of them (8, 10, 12) belong to server 0.
  const auto scoped = recorder.for_node("routing_server[0]");
  ASSERT_EQ(scoped.size(), 3u);
  EXPECT_EQ(scoped[0].seq, 8u);
  EXPECT_EQ(scoped[1].seq, 10u);
  EXPECT_EQ(scoped[2].seq, 12u);
  EXPECT_EQ(scoped[2].detail, "seq 12");
  // A node fully rotated out of the ring scopes to nothing.
  EXPECT_TRUE(recorder.for_node("edge-gone").empty());
}

TEST(FlightRecorder, DeposedLeaderEventsStayAttributedThroughChurn) {
  // Election-churn timeline: the old leader's events keep their node
  // attribution after it is deposed and the fabric re-homes — the recorder
  // never rewrites history, so post-mortems can see both reigns.
  FlightRecorder recorder{16};
  recorder.record(at_ms(10), EventKind::FeedState, "routing_server[0]", "leader epoch 1");
  recorder.record(at_ms(20), EventKind::Publish, "routing_server[0]", "10.1.0.5");
  recorder.record(at_ms(30), EventKind::Fault, "routing_server[0]", "killed");
  recorder.record(at_ms(40), EventKind::FeedState, "routing_server[1]", "leader epoch 2");
  recorder.record(at_ms(41), EventKind::Resync, "border-0", "re-home epoch 2");
  recorder.record(at_ms(42), EventKind::SnapshotApplied, "border-0", "epoch 2");
  recorder.record(at_ms(50), EventKind::Publish, "routing_server[1]", "10.1.0.5");

  const auto deposed = recorder.for_node("routing_server[0]");
  ASSERT_EQ(deposed.size(), 3u);
  EXPECT_EQ(deposed.back().kind, EventKind::Fault);
  EXPECT_EQ(deposed.back().detail, "killed");

  const auto elected = recorder.for_node("routing_server[1]");
  ASSERT_EQ(elected.size(), 2u);
  EXPECT_EQ(elected.front().detail, "leader epoch 2");

  // The global timeline interleaves both reigns in seq order.
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 7u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  // Churn long enough to wrap the ring still keeps attribution straight:
  // flood epoch-3 events from server 0 (re-elected) until the epoch-2
  // history rotates out.
  for (int i = 0; i < 20; ++i) {
    recorder.record(at_ms(100 + i), EventKind::Publish, "routing_server[0]", "epoch 3");
  }
  EXPECT_EQ(recorder.size(), recorder.capacity());
  EXPECT_TRUE(recorder.for_node("routing_server[1]").empty());
  for (const auto& e : recorder.for_node("routing_server[0]")) {
    EXPECT_EQ(e.detail, "epoch 3");
  }
}

TEST(FlightRecorder, ZeroCapacityClampsToOne) {
  FlightRecorder recorder{0};
  recorder.record(at_ms(1), EventKind::Custom, "a");
  recorder.record(at_ms(2), EventKind::Custom, "b");
  EXPECT_EQ(recorder.capacity(), 1u);
  EXPECT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.events().front().node, "b");
}

}  // namespace
}  // namespace sda::telemetry
