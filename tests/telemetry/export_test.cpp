// Exporter conformance tests: the Prometheus text rendering and JSON
// snapshot must keep their exact shape — scripts/check_metrics.sh and any
// external scrape pipeline parse these formats byte-by-byte.
#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <string>

#include "telemetry/metrics.hpp"

namespace sda::telemetry {
namespace {

Snapshot sample_snapshot() {
  MetricsRegistry reg;
  reg.counter("edge[3].map_cache.misses").inc(7);
  reg.counter("ha.failovers").inc(2);
  reg.gauge("ha.election.leader").set(1);
  reg.gauge("fabric.load").set(0.25);
  auto& hist = reg.histogram("assurance.register_rtt_us", HistogramSpec{0.0, 40.0, 4});
  // Buckets are [0,10) [10,20) [20,30) [30,40): one underflow, spread the
  // rest so the cumulative rendering is distinguishable per bucket.
  hist.observe(-5.0);   // underflow
  hist.observe(5.0);    // bucket 0
  hist.observe(15.0);   // bucket 1
  hist.observe(17.0);   // bucket 1
  hist.observe(35.0);   // bucket 3
  hist.observe(100.0);  // overflow
  return reg.snapshot();
}

TEST(Export, PrometheusNameSanitization) {
  const std::string prom = to_prometheus(sample_snapshot());
  // Brackets and dots collapse to single underscores; no trailing '_'.
  EXPECT_NE(prom.find("# TYPE sda_edge_3_map_cache_misses counter\n"), std::string::npos);
  EXPECT_NE(prom.find("sda_edge_3_map_cache_misses 7\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE sda_ha_election_leader gauge\n"), std::string::npos);
  EXPECT_EQ(prom.find("sda_edge_3_"), prom.find("# TYPE sda_edge_3_") + 7);
}

TEST(Export, PrometheusHistogramIsCumulativeWithUnderflow) {
  const std::string prom = to_prometheus(sample_snapshot());
  // Cumulative counts start from the underflow bin: 1 underflow, then
  // +1, +2, +0, +1 across the four buckets -> 2, 4, 4, 5; +Inf adds the
  // overflow sample to reach total=6.
  const std::string h = "sda_assurance_register_rtt_us";
  EXPECT_NE(prom.find("# TYPE " + h + " histogram\n"), std::string::npos);
  EXPECT_NE(prom.find(h + "_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find(h + "_bucket{le=\"20\"} 4\n"), std::string::npos);
  EXPECT_NE(prom.find(h + "_bucket{le=\"30\"} 4\n"), std::string::npos);
  EXPECT_NE(prom.find(h + "_bucket{le=\"40\"} 5\n"), std::string::npos);
  EXPECT_NE(prom.find(h + "_bucket{le=\"+Inf\"} 6\n"), std::string::npos);
  EXPECT_NE(prom.find(h + "_sum 167\n"), std::string::npos);
  EXPECT_NE(prom.find(h + "_count 6\n"), std::string::npos);
}

TEST(Export, PrometheusInfBucketMatchesCount) {
  // Conformance rule: le="+Inf" equals _count for every histogram, and
  // bucket values never decrease (cumulative semantics).
  const std::string prom = to_prometheus(sample_snapshot());
  std::uint64_t last = 0;
  std::size_t pos = 0;
  std::uint64_t inf_value = 0, count_value = 0;
  while ((pos = prom.find("_bucket{le=\"", pos)) != std::string::npos) {
    const std::size_t close = prom.find("\"} ", pos);
    ASSERT_NE(close, std::string::npos);
    const bool inf = prom.compare(pos, 17, "_bucket{le=\"+Inf\"") == 0;
    const std::uint64_t v = std::stoull(prom.substr(close + 3));
    EXPECT_GE(v, last) << "bucket counts must be cumulative";
    last = inf ? 0 : v;  // reset at histogram boundary (+Inf is last)
    if (inf) inf_value = v;
    pos = close;
  }
  pos = prom.find("_count ");
  ASSERT_NE(pos, std::string::npos);
  count_value = std::stoull(prom.substr(pos + 7));
  EXPECT_EQ(inf_value, count_value);
}

TEST(Export, GoldenPrometheusRendering) {
  // Full golden string for a minimal snapshot: sorted order, one # TYPE
  // line per metric, exact float formatting. A diff here means the scrape
  // format changed — update check_metrics.sh consumers deliberately.
  MetricsRegistry reg;
  reg.counter("b.count").inc(3);
  reg.gauge("a.depth").set(1.5);
  reg.histogram("c.lat_us", HistogramSpec{0.0, 20.0, 2}).observe(5.0);
  const std::string expected =
      "# TYPE sda_b_count counter\n"
      "sda_b_count 3\n"
      "# TYPE sda_a_depth gauge\n"
      "sda_a_depth 1.5\n"
      "# TYPE sda_c_lat_us histogram\n"
      "sda_c_lat_us_bucket{le=\"10\"} 1\n"
      "sda_c_lat_us_bucket{le=\"20\"} 1\n"
      "sda_c_lat_us_bucket{le=\"+Inf\"} 1\n"
      "sda_c_lat_us_sum 5\n"
      "sda_c_lat_us_count 1\n";
  EXPECT_EQ(to_prometheus(reg.snapshot()), expected);
}

TEST(Export, JsonShapeAndDeterminism) {
  const Snapshot snap = sample_snapshot();
  const std::string json = to_json(snap);
  // Keys are sorted, so equal snapshots render identically.
  EXPECT_EQ(json, to_json(snap));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"edge[3].map_cache.misses\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"ha.failovers\": 2"), std::string::npos);
  // Histogram object carries the full bucket-layout contract.
  for (const char* field : {"\"lo\"", "\"hi\"", "\"counts\"", "\"underflow\"",
                            "\"overflow\"", "\"total\"", "\"sum\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  EXPECT_NE(json.find("\"total\": 6"), std::string::npos);
}

TEST(Export, EmptySnapshotRenders) {
  const Snapshot empty;
  EXPECT_EQ(to_prometheus(empty), "");
  const std::string json = to_json(empty);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
}

}  // namespace
}  // namespace sda::telemetry
