#include "telemetry/path_trace.hpp"

#include <gtest/gtest.h>

namespace sda::telemetry {
namespace {

using namespace std::chrono_literals;

constexpr net::VnId kVn{7};

net::OverlayFrame ip_frame(net::Ipv4Address source, net::Ipv4Address destination) {
  net::OverlayFrame frame;
  frame.source_mac = net::MacAddress::from_u64(0x02AA);
  frame.destination_mac = net::MacAddress::from_u64(0x02BB);
  net::Ipv4Datagram dgram;
  dgram.source = source;
  dgram.destination = destination;
  dgram.payload_size = 100;
  frame.l3 = dgram;
  return frame;
}

net::VnEid eid(net::Ipv4Address ip) { return net::VnEid{kVn, net::Eid{ip}}; }

TEST(PathTracer, ArmedFlowRecordsHopsUntilTerminal) {
  PathTracer tracer;
  const net::Ipv4Address src{10, 1, 0, 1};
  const net::Ipv4Address dst{10, 1, 0, 2};
  const std::uint64_t id = tracer.arm(eid(src), eid(dst));
  EXPECT_FALSE(tracer.idle());

  const net::OverlayFrame frame = ip_frame(src, dst);
  tracer.ingress(kVn, frame, "edge-0", sim::SimTime{1us});
  EXPECT_EQ(tracer.open_count(), 1u);
  EXPECT_EQ(tracer.armed_count(), 0u);
  tracer.note(kVn, frame, HopKind::Encap, "edge-0", sim::SimTime{3us}, "to 192.168.0.2");
  tracer.note(kVn, frame, HopKind::Transit, "underlay", sim::SimTime{53us});
  tracer.note(kVn, frame, HopKind::Decap, "edge-1", sim::SimTime{55us});
  tracer.note(kVn, frame, HopKind::SgaclPermit, "edge-1", sim::SimTime{56us});
  tracer.note(kVn, frame, HopKind::Deliver, "edge-1", sim::SimTime{57us});

  EXPECT_TRUE(tracer.idle());
  ASSERT_EQ(tracer.completed().size(), 1u);
  const PacketTrace* trace = tracer.find_completed(id);
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->done);
  EXPECT_TRUE(trace->delivered);
  ASSERT_EQ(trace->hops.size(), 6u);
  EXPECT_EQ(trace->hops.front().kind, HopKind::Ingress);
  EXPECT_EQ(trace->hops.back().kind, HopKind::Deliver);
  EXPECT_EQ(trace->latency(), 56us);  // 1us ingress -> 57us deliver
  // The rendering decomposes per-hop deltas.
  const std::string text = trace->to_string();
  EXPECT_NE(text.find("[delivered 56us]"), std::string::npos);
  EXPECT_NE(text.find("encap @edge-0 (to 192.168.0.2)"), std::string::npos);
}

TEST(PathTracer, SgaclDenyIsTerminalAndNotDelivered) {
  PathTracer tracer;
  const net::Ipv4Address src{10, 1, 0, 1};
  const net::Ipv4Address dst{10, 1, 0, 9};
  tracer.arm(eid(src), eid(dst));
  const net::OverlayFrame frame = ip_frame(src, dst);
  tracer.ingress(kVn, frame, "edge-0", sim::SimTime{});
  tracer.note(kVn, frame, HopKind::SgaclDeny, "edge-1", sim::SimTime{9us}, "sgt:10 -> sgt:20");
  ASSERT_EQ(tracer.completed().size(), 1u);
  EXPECT_TRUE(tracer.completed().front().done);
  EXPECT_FALSE(tracer.completed().front().delivered);
  // Post-terminal notes for the same flow are ignored.
  tracer.note(kVn, frame, HopKind::Deliver, "edge-1", sim::SimTime{10us});
  EXPECT_EQ(tracer.completed().size(), 1u);
}

TEST(PathTracer, IdleHooksIgnoreUnmatchedTraffic) {
  PathTracer tracer;
  const net::OverlayFrame frame = ip_frame({10, 0, 0, 1}, {10, 0, 0, 2});
  tracer.ingress(kVn, frame, "edge-0", sim::SimTime{});
  tracer.note(kVn, frame, HopKind::Deliver, "edge-0", sim::SimTime{});
  EXPECT_TRUE(tracer.idle());
  EXPECT_TRUE(tracer.completed().empty());

  // Armed for a different flow: unrelated frames still pass through.
  tracer.arm(eid({10, 9, 9, 9}), eid({10, 9, 9, 8}));
  tracer.ingress(kVn, frame, "edge-0", sim::SimTime{});
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.armed_count(), 1u);
}

TEST(PathTracer, NonIpFramesNeverMatch) {
  PathTracer tracer;
  tracer.arm(eid({10, 1, 0, 1}), eid({10, 1, 0, 2}));
  net::OverlayFrame arp;
  arp.source_mac = net::MacAddress::from_u64(0x02AA);
  arp.destination_mac = net::MacAddress::broadcast();
  arp.l3 = net::ArpPacket{};
  tracer.ingress(kVn, arp, "edge-0", sim::SimTime{});
  EXPECT_EQ(tracer.open_count(), 0u);
}

TEST(PathTracer, ReArmingAbandonsTheOpenTrace) {
  PathTracer tracer;
  const net::Ipv4Address src{10, 1, 0, 1};
  const net::Ipv4Address dst{10, 1, 0, 2};
  tracer.arm(eid(src), eid(dst));
  const net::OverlayFrame frame = ip_frame(src, dst);
  tracer.ingress(kVn, frame, "edge-0", sim::SimTime{});
  // The packet died silently (e.g. underlay loss); the flow is re-armed.
  tracer.arm(eid(src), eid(dst));
  EXPECT_EQ(tracer.abandoned(), 1u);
  EXPECT_EQ(tracer.open_count(), 0u);
  tracer.ingress(kVn, frame, "edge-0", sim::SimTime{2us});
  tracer.note(kVn, frame, HopKind::Deliver, "edge-0", sim::SimTime{3us});
  ASSERT_EQ(tracer.completed().size(), 1u);
  EXPECT_EQ(tracer.completed().front().started, sim::SimTime{2us});
}

TEST(PathTracer, CompletedTracesAreBounded) {
  PathTracer tracer{2};
  for (int i = 0; i < 5; ++i) {
    const net::Ipv4Address src{10, 1, 0, static_cast<std::uint8_t>(10 + i)};
    const net::Ipv4Address dst{10, 1, 0, 2};
    tracer.arm(eid(src), eid(dst));
    const net::OverlayFrame frame = ip_frame(src, dst);
    tracer.ingress(kVn, frame, "edge-0", sim::SimTime{});
    tracer.note(kVn, frame, HopKind::Deliver, "edge-0", sim::SimTime{1us});
  }
  EXPECT_EQ(tracer.completed().size(), 2u);
  // Oldest dropped: the survivors are the last two traces.
  EXPECT_EQ(tracer.completed().front().source, eid({10, 1, 0, 13}));
  EXPECT_EQ(tracer.completed().back().source, eid({10, 1, 0, 14}));
}

TEST(PathTracer, CompletionCallbackFires) {
  PathTracer tracer;
  int completions = 0;
  bool delivered = false;
  tracer.set_completion_callback([&](const PacketTrace& trace) {
    ++completions;
    delivered = trace.delivered;
  });
  const net::Ipv4Address src{10, 1, 0, 1};
  const net::Ipv4Address dst{10, 1, 0, 2};
  tracer.arm(eid(src), eid(dst));
  const net::OverlayFrame frame = ip_frame(src, dst);
  tracer.ingress(kVn, frame, "edge-0", sim::SimTime{});
  tracer.note(kVn, frame, HopKind::ExternalOut, "border-0", sim::SimTime{4us});
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(delivered);  // ExternalOut counts as delivered
}

}  // namespace
}  // namespace sda::telemetry
