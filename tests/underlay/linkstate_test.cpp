#include "underlay/linkstate.hpp"

#include <gtest/gtest.h>

namespace sda::underlay {
namespace {

net::Ipv4Address rloc(std::uint32_t i) { return net::Ipv4Address{0x0A000000u + i}; }
constexpr auto us100 = std::chrono::microseconds{100};

/// Line a - b - c - d plus a redundant a - d link.
struct LinkStateFixture : ::testing::Test {
  void SetUp() override {
    a = topo.add_node("a", rloc(1));
    b = topo.add_node("b", rloc(2));
    c = topo.add_node("c", rloc(3));
    d = topo.add_node("d", rloc(4));
    ab = topo.add_link(a, b, us100);
    bc = topo.add_link(b, c, us100);
    cd = topo.add_link(c, d, us100);
    ad = topo.add_link(a, d, us100, 5);  // backup, higher cost
    protocol = std::make_unique<LinkStateProtocol>(sim, topo, config);
    protocol->start();
    sim.run();
  }

  sim::Simulator sim;
  Topology topo;
  LinkStateConfig config;
  NodeId a{}, b{}, c{}, d{};
  LinkId ab{}, bc{}, cd{}, ad{};
  std::unique_ptr<LinkStateProtocol> protocol;
};

TEST_F(LinkStateFixture, InitialFloodConvergesAllViews) {
  for (const NodeId who : {a, b, c, d}) {
    EXPECT_EQ(protocol->lsdb(who).size(), 4u) << who;
    for (const NodeId target : {a, b, c, d}) {
      EXPECT_TRUE(protocol->view_reachable(who, target)) << who << "->" << target;
    }
  }
  // Views agree with the true topology's costs.
  EXPECT_EQ(protocol->view(a).route(c)->cost, 2u);
  EXPECT_EQ(protocol->view(a).route(d)->cost, 3u);  // via b-c, cheaper than the 5-cost direct
}

TEST_F(LinkStateFixture, StaleSequenceIgnored) {
  const auto installed_before = protocol->stats().lsps_installed;
  // Re-originate b: every node sees one newer LSP; duplicates are dropped.
  topo.set_link_state(bc, false);
  topo.set_link_state(bc, true);
  protocol->notify_link_change(bc);
  sim.run();
  EXPECT_GT(protocol->stats().lsps_installed, installed_before);
  EXPECT_GT(protocol->stats().lsps_ignored, 0u);  // redundant flood copies
}

TEST_F(LinkStateFixture, LinkFailureConvergesNearFirst) {
  std::vector<std::pair<NodeId, double>> view_changes;  // (node, seconds)
  protocol->set_view_change_callback([&](NodeId node) {
    view_changes.emplace_back(node, sim.now().seconds());
  });

  topo.set_link_state(cd, false);
  protocol->notify_link_change(cd);
  sim.run();

  // All views converged: d now only reachable via the backup a-d link.
  for (const NodeId who : {a, b, c}) {
    EXPECT_TRUE(protocol->view_reachable(who, d)) << who;
  }
  EXPECT_EQ(protocol->view(c).route(d)->cost, 2u + 5u);  // c-b-a-d
  EXPECT_EQ(protocol->view(a).route(d)->cost, 5u);       // direct backup

  // The failure's endpoints (c, d) hear about it strictly before the far
  // node (b hears via flooding from c).
  double c_time = 0, b_time = 0;
  for (const auto& [node, when] : view_changes) {
    if (node == c && c_time == 0) c_time = when;
    if (node == b && b_time == 0) b_time = when;
  }
  ASSERT_GT(c_time, 0);
  ASSERT_GT(b_time, 0);
  EXPECT_LT(c_time, b_time);
}

TEST_F(LinkStateFixture, PartitionSplitsViews) {
  topo.set_link_state(bc, false);
  topo.set_link_state(ad, false);
  protocol->notify_link_change(bc);
  protocol->notify_link_change(ad);
  sim.run();
  // {a, b} and {c, d} are now separate islands.
  EXPECT_TRUE(protocol->view_reachable(a, b));
  EXPECT_FALSE(protocol->view_reachable(a, c));
  EXPECT_FALSE(protocol->view_reachable(a, d));
  EXPECT_TRUE(protocol->view_reachable(c, d));
  EXPECT_FALSE(protocol->view_reachable(c, b));
}

TEST_F(LinkStateFixture, NodeDeathRemovedByTwoWayCheck) {
  topo.set_node_state(c, false);
  protocol->notify_node_change(c);
  sim.run();
  // c's stale LSP may linger in LSDBs, but its neighbors no longer report
  // it, so the two-way check erases its links everywhere.
  EXPECT_FALSE(protocol->view_reachable(a, c));
  EXPECT_FALSE(protocol->view_reachable(b, c));
  // d stays reachable via the backup link.
  EXPECT_TRUE(protocol->view_reachable(b, d));
  EXPECT_EQ(protocol->view(b).route(d)->cost, 1u + 5u);  // b-a-d
}

TEST_F(LinkStateFixture, NodeRecoveryReconverges) {
  topo.set_node_state(c, false);
  protocol->notify_node_change(c);
  sim.run();
  ASSERT_FALSE(protocol->view_reachable(a, c));

  topo.set_node_state(c, true);
  protocol->notify_node_change(c);
  sim.run();
  for (const NodeId who : {a, b, d}) {
    EXPECT_TRUE(protocol->view_reachable(who, c)) << who;
  }
  // The recovered node itself relearns the full topology.
  for (const NodeId target : {a, b, d}) {
    EXPECT_TRUE(protocol->view_reachable(c, target)) << target;
  }
}

TEST_F(LinkStateFixture, ConvergenceTimingBounds) {
  // For a failure at c-d, node b's view updates no earlier than
  // failure_detection + one flood hop + spf_delay, and not much later.
  double b_time = -1;
  protocol->set_view_change_callback([&](NodeId node) {
    if (node == b && b_time < 0) b_time = sim.now().seconds();
  });
  const double t0 = sim.now().seconds();
  topo.set_link_state(cd, false);
  protocol->notify_link_change(cd);
  sim.run();
  ASSERT_GE(b_time, 0);
  const double elapsed = b_time - t0;
  const double lower = 0.300 + 0.001 + 0.050;          // detect + 1 hop + spf
  const double upper = 0.300 + 3 * 0.002 + 0.050 + 0.1;  // generous slack
  EXPECT_GE(elapsed, lower);
  EXPECT_LE(elapsed, upper);
}

TEST(LinkStateScale, WarehouseStarConverges) {
  // 200 spokes + hub: the flood settles and every spoke sees every other.
  sim::Simulator sim;
  Topology topo;
  const NodeId hub = topo.add_node("hub", rloc(1000));
  std::vector<NodeId> spokes;
  for (int i = 0; i < 200; ++i) {
    spokes.push_back(topo.add_node("s" + std::to_string(i), rloc(static_cast<std::uint32_t>(i))));
    topo.add_link(hub, spokes.back(), us100);
  }
  LinkStateProtocol protocol{sim, topo, {}};
  protocol.start();
  sim.run();
  EXPECT_TRUE(protocol.view_reachable(spokes[0], spokes[199]));
  EXPECT_EQ(protocol.view(spokes[0]).route(spokes[199])->hop_count, 2u);
  EXPECT_EQ(protocol.lsdb(spokes[7]).size(), 201u);
}

}  // namespace
}  // namespace sda::underlay
