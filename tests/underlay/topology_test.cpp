#include "underlay/topology.hpp"

#include <gtest/gtest.h>

namespace sda::underlay {
namespace {

net::Ipv4Address rloc(std::uint32_t i) { return net::Ipv4Address{0x0A000000u + i}; }

TEST(Topology, AddNodesAndLinks) {
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(1));
  const NodeId b = topo.add_node("b", rloc(2));
  const LinkId l = topo.add_link(a, b, std::chrono::microseconds{10}, 5);
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_EQ(topo.node(a).name, "a");
  EXPECT_EQ(topo.link(l).cost, 5u);
  EXPECT_EQ(topo.link(l).other(a), b);
  EXPECT_EQ(topo.link(l).other(b), a);
}

TEST(Topology, AdjacencyTracksBothEndpoints) {
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(1));
  const NodeId b = topo.add_node("b", rloc(2));
  const NodeId c = topo.add_node("c", rloc(3));
  topo.add_link(a, b, std::chrono::microseconds{1});
  topo.add_link(a, c, std::chrono::microseconds{1});
  EXPECT_EQ(topo.links_of(a).size(), 2u);
  EXPECT_EQ(topo.links_of(b).size(), 1u);
  EXPECT_EQ(topo.links_of(c).size(), 1u);
}

TEST(Topology, LoopbackLookup) {
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(7));
  EXPECT_EQ(topo.node_by_loopback(rloc(7)), a);
  EXPECT_FALSE(topo.node_by_loopback(rloc(9)).has_value());
}

TEST(Topology, LinkUsabilityFollowsStates) {
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(1));
  const NodeId b = topo.add_node("b", rloc(2));
  const LinkId l = topo.add_link(a, b, std::chrono::microseconds{1});
  EXPECT_TRUE(topo.link_usable(l));
  topo.set_link_state(l, false);
  EXPECT_FALSE(topo.link_usable(l));
  topo.set_link_state(l, true);
  EXPECT_TRUE(topo.link_usable(l));
  topo.set_node_state(b, false);
  EXPECT_FALSE(topo.link_usable(l));
}

TEST(Topology, VersionBumpsOnlyOnChange) {
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(1));
  const NodeId b = topo.add_node("b", rloc(2));
  const LinkId l = topo.add_link(a, b, std::chrono::microseconds{1});
  const auto v = topo.version();
  topo.set_link_state(l, true);  // already up: no change
  EXPECT_EQ(topo.version(), v);
  topo.set_link_state(l, false);
  EXPECT_GT(topo.version(), v);
  topo.set_node_state(a, true);  // already up
  const auto v2 = topo.version();
  topo.set_node_state(a, false);
  EXPECT_GT(topo.version(), v2);
}

}  // namespace
}  // namespace sda::underlay
