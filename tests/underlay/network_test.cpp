#include "underlay/network.hpp"

#include <gtest/gtest.h>

namespace sda::underlay {
namespace {

net::Ipv4Address rloc(std::uint32_t i) { return net::Ipv4Address{0x0A000000u + i}; }
constexpr auto us50 = std::chrono::microseconds{50};

struct NetworkFixture : ::testing::Test {
  void SetUp() override {
    a = topo.add_node("a", rloc(1));
    b = topo.add_node("b", rloc(2));
    c = topo.add_node("c", rloc(3));
    ab = topo.add_link(a, b, us50);
    bc = topo.add_link(b, c, us50);
    net = std::make_unique<UnderlayNetwork>(sim, topo);
  }

  sim::Simulator sim;
  Topology topo;
  NodeId a{}, b{}, c{};
  LinkId ab{}, bc{};
  std::unique_ptr<UnderlayNetwork> net;
};

TEST_F(NetworkFixture, ReachabilityOverPath) {
  EXPECT_TRUE(net->reachable(a, rloc(3)));
  EXPECT_FALSE(net->reachable(a, rloc(99)));
}

TEST_F(NetworkFixture, TransitDelayIncludesHopsAndSerialization) {
  const auto d = net->transit_delay(a, rloc(3), 0, 0);
  ASSERT_TRUE(d.has_value());
  // 2 links * 50us + 2 hops * 5us processing.
  EXPECT_EQ(*d, us50 * 2 + std::chrono::microseconds{10});
  const auto with_bytes = net->transit_delay(a, rloc(3), 0, 1500);
  EXPECT_GT(*with_bytes, *d);
}

TEST_F(NetworkFixture, TransitDelayToSelfIsZero) {
  EXPECT_EQ(net->transit_delay(a, rloc(1), 0, 100), sim::Duration{0});
}

TEST_F(NetworkFixture, DeliverSchedulesArrival) {
  bool arrived = false;
  EXPECT_TRUE(net->deliver(a, rloc(3), 0, 100, [&] { arrived = true; }));
  EXPECT_FALSE(arrived);
  sim.run();
  EXPECT_TRUE(arrived);
  EXPECT_GT(sim.now(), sim::SimTime::zero());
}

TEST_F(NetworkFixture, DeliverDropsWhenUnreachable) {
  topo.set_link_state(ab, false);
  bool arrived = false;
  EXPECT_FALSE(net->deliver(a, rloc(3), 0, 100, [&] { arrived = true; }));
  sim.run();
  EXPECT_FALSE(arrived);
  EXPECT_EQ(net->unreachable_drops(), 1u);
}

TEST_F(NetworkFixture, TablesRefreshAfterTopologyChange) {
  EXPECT_TRUE(net->reachable(a, rloc(3)));
  topo.set_link_state(bc, false);
  EXPECT_FALSE(net->reachable(a, rloc(3)));
  topo.set_link_state(bc, true);
  EXPECT_TRUE(net->reachable(a, rloc(3)));
}

TEST_F(NetworkFixture, WatcherNotifiedAfterConvergenceDelay) {
  std::vector<std::pair<net::Ipv4Address, bool>> events;
  net->watch(a, [&](net::Ipv4Address r, bool up) { events.emplace_back(r, up); });

  topo.set_link_state(bc, false);
  net->topology_changed();
  EXPECT_TRUE(events.empty());  // not yet: IGP needs to converge
  sim.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, rloc(3));
  EXPECT_FALSE(events[0].second);

  topo.set_link_state(bc, true);
  net->topology_changed();
  sim.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[1].second);
}

TEST_F(NetworkFixture, WatcherOnlySeesTransitions) {
  int count = 0;
  net->watch(a, [&](net::Ipv4Address, bool) { ++count; });
  net->topology_changed();  // nothing actually changed
  sim.run();
  EXPECT_EQ(count, 0);
}

TEST_F(NetworkFixture, MultipleChangesCoalesceIntoOneNotification) {
  int count = 0;
  net->watch(a, [&](net::Ipv4Address, bool) { ++count; });
  topo.set_link_state(bc, false);
  net->topology_changed();
  net->topology_changed();
  net->topology_changed();
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST_F(NetworkFixture, NodeDownReportsItsRlocUnreachable) {
  std::vector<net::Ipv4Address> down;
  net->watch(a, [&](net::Ipv4Address r, bool up) {
    if (!up) down.push_back(r);
  });
  topo.set_node_state(c, false);
  net->topology_changed();
  sim.run();
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0], rloc(3));
}

}  // namespace
}  // namespace sda::underlay
