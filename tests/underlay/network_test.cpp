#include "underlay/network.hpp"

#include <gtest/gtest.h>

namespace sda::underlay {
namespace {

net::Ipv4Address rloc(std::uint32_t i) { return net::Ipv4Address{0x0A000000u + i}; }
constexpr auto us50 = std::chrono::microseconds{50};

struct NetworkFixture : ::testing::Test {
  void SetUp() override {
    a = topo.add_node("a", rloc(1));
    b = topo.add_node("b", rloc(2));
    c = topo.add_node("c", rloc(3));
    ab = topo.add_link(a, b, us50);
    bc = topo.add_link(b, c, us50);
    net = std::make_unique<UnderlayNetwork>(sim, topo);
  }

  sim::Simulator sim;
  Topology topo;
  NodeId a{}, b{}, c{};
  LinkId ab{}, bc{};
  std::unique_ptr<UnderlayNetwork> net;
};

TEST_F(NetworkFixture, ReachabilityOverPath) {
  EXPECT_TRUE(net->reachable(a, rloc(3)));
  EXPECT_FALSE(net->reachable(a, rloc(99)));
}

TEST_F(NetworkFixture, TransitDelayIncludesHopsAndSerialization) {
  const auto d = net->transit_delay(a, rloc(3), 0, 0);
  ASSERT_TRUE(d.has_value());
  // 2 links * 50us + 2 hops * 5us processing.
  EXPECT_EQ(*d, us50 * 2 + std::chrono::microseconds{10});
  const auto with_bytes = net->transit_delay(a, rloc(3), 0, 1500);
  EXPECT_GT(*with_bytes, *d);
}

TEST_F(NetworkFixture, TransitDelayToSelfIsZero) {
  EXPECT_EQ(net->transit_delay(a, rloc(1), 0, 100), sim::Duration{0});
}

TEST_F(NetworkFixture, DeliverSchedulesArrival) {
  bool arrived = false;
  EXPECT_TRUE(net->deliver(a, rloc(3), 0, 100, [&] { arrived = true; }));
  EXPECT_FALSE(arrived);
  sim.run();
  EXPECT_TRUE(arrived);
  EXPECT_GT(sim.now(), sim::SimTime::zero());
}

TEST_F(NetworkFixture, DeliverDropsWhenUnreachable) {
  topo.set_link_state(ab, false);
  bool arrived = false;
  EXPECT_FALSE(net->deliver(a, rloc(3), 0, 100, [&] { arrived = true; }));
  sim.run();
  EXPECT_FALSE(arrived);
  EXPECT_EQ(net->unreachable_drops(), 1u);
}

TEST_F(NetworkFixture, TablesRefreshAfterTopologyChange) {
  EXPECT_TRUE(net->reachable(a, rloc(3)));
  topo.set_link_state(bc, false);
  EXPECT_FALSE(net->reachable(a, rloc(3)));
  topo.set_link_state(bc, true);
  EXPECT_TRUE(net->reachable(a, rloc(3)));
}

TEST_F(NetworkFixture, WatcherNotifiedAfterConvergenceDelay) {
  std::vector<std::pair<net::Ipv4Address, bool>> events;
  net->watch(a, [&](net::Ipv4Address r, bool up) { events.emplace_back(r, up); });

  topo.set_link_state(bc, false);
  net->topology_changed();
  EXPECT_TRUE(events.empty());  // not yet: IGP needs to converge
  sim.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, rloc(3));
  EXPECT_FALSE(events[0].second);

  topo.set_link_state(bc, true);
  net->topology_changed();
  sim.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[1].second);
}

TEST_F(NetworkFixture, WatcherOnlySeesTransitions) {
  int count = 0;
  net->watch(a, [&](net::Ipv4Address, bool) { ++count; });
  net->topology_changed();  // nothing actually changed
  sim.run();
  EXPECT_EQ(count, 0);
}

TEST_F(NetworkFixture, MultipleChangesCoalesceIntoOneNotification) {
  int count = 0;
  net->watch(a, [&](net::Ipv4Address, bool) { ++count; });
  topo.set_link_state(bc, false);
  net->topology_changed();
  net->topology_changed();
  net->topology_changed();
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST_F(NetworkFixture, RapidFlapsEndingUpProduceNoStaleCallbacks) {
  std::vector<std::pair<net::Ipv4Address, bool>> events;
  net->watch(a, [&](net::Ipv4Address r, bool up) {
    // Every callback must agree with the network's view at delivery time.
    EXPECT_EQ(up, net->reachable(a, r));
    events.emplace_back(r, up);
  });

  // Four transitions packed inside one igp_convergence window (200ms),
  // ending back in the up state the watcher started from.
  const auto step = std::chrono::milliseconds{10};
  for (int i = 0; i < 4; ++i) {
    sim.schedule_at(sim::SimTime{step * (i + 1)}, [this, i] {
      topo.set_link_state(bc, i % 2 != 0);
      net->topology_changed();
    });
  }
  sim.run();
  // Net-zero change: a watcher that reported anything saw a stale snapshot.
  EXPECT_TRUE(events.empty());
}

TEST_F(NetworkFixture, RapidFlapsEndingDownReportOneAccurateTransition) {
  std::vector<std::pair<net::Ipv4Address, bool>> events;
  net->watch(a, [&](net::Ipv4Address r, bool up) {
    EXPECT_EQ(up, net->reachable(a, r));
    events.emplace_back(r, up);
  });

  const auto step = std::chrono::milliseconds{10};
  for (int i = 0; i < 5; ++i) {  // odd transition count: link ends down
    sim.schedule_at(sim::SimTime{step * (i + 1)}, [this, i] {
      topo.set_link_state(bc, i % 2 != 0);
      net->topology_changed();
    });
  }
  sim.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, rloc(3));
  EXPECT_FALSE(events[0].second);
  EXPECT_FALSE(net->reachable(a, rloc(3)));
}

TEST_F(NetworkFixture, NodeFlapsAcrossWindowsAlternateStrictly) {
  std::vector<bool> states;
  net->watch(a, [&](net::Ipv4Address r, bool up) {
    if (r == rloc(3)) states.push_back(up);
  });
  // Down/up transitions spaced wider than igp_convergence so each lands in
  // its own notification window: the reported sequence must alternate with
  // no duplicated (stale) state.
  const auto spacing = std::chrono::milliseconds{250};
  for (int i = 0; i < 6; ++i) {
    sim.schedule_at(sim::SimTime{spacing * (i + 1)}, [this, i] {
      topo.set_node_state(c, i % 2 != 0);
      net->topology_changed();
    });
  }
  sim.run();
  ASSERT_EQ(states.size(), 6u);
  for (std::size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ(states[i], i % 2 != 0) << "callback " << i;
  }
}

TEST_F(NetworkFixture, NodeDownReportsItsRlocUnreachable) {
  std::vector<net::Ipv4Address> down;
  net->watch(a, [&](net::Ipv4Address r, bool up) {
    if (!up) down.push_back(r);
  });
  topo.set_node_state(c, false);
  net->topology_changed();
  sim.run();
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0], rloc(3));
}

}  // namespace
}  // namespace sda::underlay
