// Property test: ECMP Dijkstra vs a Floyd-Warshall reference on random
// graphs — distances, reachability, and first-hop validity must agree.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "sim/random.hpp"
#include "underlay/spf.hpp"

namespace sda::underlay {
namespace {

struct GraphCase {
  std::uint64_t seed;
  std::size_t nodes;
  double edge_probability;
  bool with_failures;
};

class SpfProperty : public ::testing::TestWithParam<GraphCase> {};

TEST_P(SpfProperty, MatchesFloydWarshallReference) {
  const GraphCase param = GetParam();
  sim::Rng rng{param.seed};

  Topology topo;
  for (std::size_t i = 0; i < param.nodes; ++i) {
    topo.add_node("n" + std::to_string(i),
                  net::Ipv4Address{0x0A000000u + static_cast<std::uint32_t>(i)});
  }
  for (std::size_t a = 0; a < param.nodes; ++a) {
    for (std::size_t b = a + 1; b < param.nodes; ++b) {
      if (rng.chance(param.edge_probability)) {
        topo.add_link(static_cast<NodeId>(a), static_cast<NodeId>(b),
                      std::chrono::microseconds{10},
                      static_cast<std::uint32_t>(1 + rng.next_below(4)));
      }
    }
  }
  if (param.with_failures) {
    for (LinkId l = 0; l < topo.link_count(); ++l) {
      if (rng.chance(0.2)) topo.set_link_state(l, false);
    }
    for (NodeId n = 1; n < topo.node_count(); ++n) {  // never fail the source
      if (rng.chance(0.1)) topo.set_node_state(n, false);
    }
  }

  // Floyd-Warshall over usable links.
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max() / 4;
  std::vector<std::vector<std::uint64_t>> dist(param.nodes,
                                               std::vector<std::uint64_t>(param.nodes, kInf));
  for (std::size_t i = 0; i < param.nodes; ++i) {
    if (topo.node(static_cast<NodeId>(i)).up) dist[i][i] = 0;
  }
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    if (!topo.link_usable(l)) continue;
    const Link& link = topo.link(l);
    dist[link.a][link.b] = std::min<std::uint64_t>(dist[link.a][link.b], link.cost);
    dist[link.b][link.a] = std::min<std::uint64_t>(dist[link.b][link.a], link.cost);
  }
  for (std::size_t k = 0; k < param.nodes; ++k) {
    for (std::size_t i = 0; i < param.nodes; ++i) {
      for (std::size_t j = 0; j < param.nodes; ++j) {
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }

  for (NodeId src = 0; src < param.nodes; ++src) {
    const SpfTable table = compute_spf(topo, src);
    for (NodeId dst = 0; dst < param.nodes; ++dst) {
      if (dst == src) continue;
      const SpfRoute* route = table.route(dst);
      const bool src_up = topo.node(src).up;
      const bool reachable = src_up && dist[src][dst] < kInf;
      ASSERT_EQ(route != nullptr, reachable) << "src " << src << " dst " << dst;
      if (!route) continue;
      EXPECT_EQ(route->cost, dist[src][dst]) << "src " << src << " dst " << dst;
      // Every ECMP next hop must be a usable neighbor lying on a shortest path.
      for (const NodeId hop : route->next_hops) {
        bool adjacent = false;
        for (const LinkId l : topo.links_of(src)) {
          if (topo.link_usable(l) && topo.link(l).other(src) == hop) {
            adjacent = true;
            EXPECT_EQ(topo.link(l).cost + dist[hop][dst], dist[src][dst])
                << "non-shortest next hop " << hop << " for " << src << "->" << dst;
            break;
          }
        }
        EXPECT_TRUE(adjacent) << "next hop " << hop << " not adjacent to " << src;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, SpfProperty,
    ::testing::Values(GraphCase{1, 8, 0.4, false}, GraphCase{2, 12, 0.3, false},
                      GraphCase{3, 12, 0.3, true}, GraphCase{4, 16, 0.25, true},
                      GraphCase{5, 20, 0.2, true}, GraphCase{6, 10, 0.9, false},
                      GraphCase{7, 15, 0.15, true}));

}  // namespace
}  // namespace sda::underlay
