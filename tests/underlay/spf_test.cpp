#include "underlay/spf.hpp"

#include <gtest/gtest.h>

namespace sda::underlay {
namespace {

net::Ipv4Address rloc(std::uint32_t i) { return net::Ipv4Address{0x0A000000u + i}; }
constexpr auto us10 = std::chrono::microseconds{10};

TEST(Spf, LineTopologyCostsAndHops) {
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(1));
  const NodeId b = topo.add_node("b", rloc(2));
  const NodeId c = topo.add_node("c", rloc(3));
  topo.add_link(a, b, us10, 1);
  topo.add_link(b, c, us10, 1);

  const SpfTable table = compute_spf(topo, a);
  ASSERT_NE(table.route(c), nullptr);
  EXPECT_EQ(table.route(c)->cost, 2u);
  EXPECT_EQ(table.route(c)->hop_count, 2u);
  EXPECT_EQ(table.route(c)->latency, us10 * 2);
  EXPECT_EQ(table.route(c)->next_hops, std::vector<NodeId>{b});
  EXPECT_EQ(table.route(b)->next_hops, std::vector<NodeId>{b});
}

TEST(Spf, SelfRouteIsNull) {
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(1));
  const SpfTable table = compute_spf(topo, a);
  EXPECT_EQ(table.route(a), nullptr);
}

TEST(Spf, PrefersLowerCostOverFewerHops) {
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(1));
  const NodeId b = topo.add_node("b", rloc(2));
  const NodeId c = topo.add_node("c", rloc(3));
  topo.add_link(a, c, us10, 10);  // direct but expensive
  topo.add_link(a, b, us10, 1);
  topo.add_link(b, c, us10, 1);
  const SpfTable table = compute_spf(topo, a);
  EXPECT_EQ(table.route(c)->cost, 2u);
  EXPECT_EQ(table.route(c)->next_hops, std::vector<NodeId>{b});
}

TEST(Spf, EcmpKeepsAllEqualCostNextHops) {
  // a -> {b, c} -> d, equal costs: both first hops must survive.
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(1));
  const NodeId b = topo.add_node("b", rloc(2));
  const NodeId c = topo.add_node("c", rloc(3));
  const NodeId d = topo.add_node("d", rloc(4));
  topo.add_link(a, b, us10);
  topo.add_link(a, c, us10);
  topo.add_link(b, d, us10);
  topo.add_link(c, d, us10);
  const SpfTable table = compute_spf(topo, a);
  EXPECT_EQ(table.route(d)->next_hops, (std::vector<NodeId>{b, c}));

  // Flow hashing picks deterministically within the set.
  const auto h1 = table.next_hop(d, 42);
  const auto h2 = table.next_hop(d, 42);
  EXPECT_EQ(h1, h2);
  bool saw_b = false, saw_c = false;
  for (std::uint64_t h = 0; h < 16; ++h) {
    const auto hop = table.next_hop(d, h);
    saw_b |= hop == b;
    saw_c |= hop == c;
  }
  EXPECT_TRUE(saw_b);
  EXPECT_TRUE(saw_c);
}

TEST(Spf, DownLinkExcluded) {
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(1));
  const NodeId b = topo.add_node("b", rloc(2));
  const LinkId l = topo.add_link(a, b, us10);
  topo.set_link_state(l, false);
  const SpfTable table = compute_spf(topo, a);
  EXPECT_EQ(table.route(b), nullptr);
  EXPECT_FALSE(table.reachable(b));
}

TEST(Spf, DownNodeExcludedAsTransit) {
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(1));
  const NodeId b = topo.add_node("b", rloc(2));
  const NodeId c = topo.add_node("c", rloc(3));
  topo.add_link(a, b, us10);
  topo.add_link(b, c, us10);
  topo.set_node_state(b, false);
  const SpfTable table = compute_spf(topo, a);
  EXPECT_EQ(table.route(b), nullptr);
  EXPECT_EQ(table.route(c), nullptr);
}

TEST(Spf, DownSourceReachesNothing) {
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(1));
  const NodeId b = topo.add_node("b", rloc(2));
  topo.add_link(a, b, us10);
  topo.set_node_state(a, false);
  const SpfTable table = compute_spf(topo, a);
  EXPECT_EQ(table.route(b), nullptr);
}

TEST(Spf, EcmpInheritsThroughIntermediateNodes) {
  // a - b - d and a - c - d (equal), then d - e: e inherits {b, c}.
  Topology topo;
  const NodeId a = topo.add_node("a", rloc(1));
  const NodeId b = topo.add_node("b", rloc(2));
  const NodeId c = topo.add_node("c", rloc(3));
  const NodeId d = topo.add_node("d", rloc(4));
  const NodeId e = topo.add_node("e", rloc(5));
  topo.add_link(a, b, us10);
  topo.add_link(a, c, us10);
  topo.add_link(b, d, us10);
  topo.add_link(c, d, us10);
  topo.add_link(d, e, us10);
  const SpfTable table = compute_spf(topo, a);
  EXPECT_EQ(table.route(e)->next_hops, (std::vector<NodeId>{b, c}));
  EXPECT_EQ(table.route(e)->cost, 3u);
}

TEST(Spf, StarTopologyScales) {
  // Hub and 200 spokes, as in the warehouse: every spoke reaches every
  // other spoke in 2 hops through the hub.
  Topology topo;
  const NodeId hub = topo.add_node("hub", rloc(1000));
  std::vector<NodeId> spokes;
  for (int i = 0; i < 200; ++i) {
    spokes.push_back(topo.add_node("s" + std::to_string(i), rloc(static_cast<std::uint32_t>(i))));
    topo.add_link(hub, spokes.back(), us10);
  }
  const SpfTable table = compute_spf(topo, spokes[0]);
  EXPECT_EQ(table.route(spokes[199])->hop_count, 2u);
  EXPECT_EQ(table.route(spokes[199])->next_hops, std::vector<NodeId>{hub});
  EXPECT_EQ(table.route(hub)->hop_count, 1u);
}

}  // namespace
}  // namespace sda::underlay
