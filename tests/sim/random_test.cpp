#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace sda::sim {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng{7};
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng{9};
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 6000; ++i) ++counts[rng.next_below(6)];
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 800) << value;  // ~1000 expected each
    EXPECT_LT(count, 1200) << value;
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{5};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInHalfOpenUnit) {
  Rng rng{11};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{13};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ExpInterarrivalMatchesRate) {
  Rng rng{17};
  const double rate_hz = 800.0;
  std::int64_t total_ns = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total_ns += rng.exp_interarrival(rate_hz).count();
  const double mean_s = static_cast<double>(total_ns) / n / 1e9;
  EXPECT_NEAR(mean_s, 1.0 / rate_hz, 0.0001);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng{19};
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ChanceProbabilities) {
  Rng rng{23};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
  EXPECT_FALSE(Rng{1}.chance(0.0));
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{29};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng{31};
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(ZipfSampler, RankZeroIsMostPopular) {
  Rng rng{37};
  ZipfSampler zipf{100, 1.0};
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
  // Zipf(1.0): p(0)/p(9) == 10.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[9], 10.0, 3.0);
}

TEST(ZipfSampler, SingleItemAlwaysSampled) {
  Rng rng{41};
  ZipfSampler zipf{1, 1.2};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(ZipfSampler, UniformWhenExponentZero) {
  Rng rng{43};
  ZipfSampler zipf{4, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

}  // namespace
}  // namespace sda::sim
