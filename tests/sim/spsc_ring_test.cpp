#include "sim/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace sda::sim {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingTest, EmptyPopFails) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, -1);
}

TEST(SpscRingTest, PushPopFifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_EQ(ring.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, FullPushFailsAndLeavesValueUsable) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(1)));
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(2)));
  auto spill = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(std::move(spill)));
  // A rejected push must not consume the value — callers spill it.
  ASSERT_NE(spill, nullptr);
  EXPECT_EQ(*spill, 3);
}

TEST(SpscRingTest, WraparoundManyTimes) {
  SpscRing<std::uint64_t> ring(4);  // tiny, so indices wrap constantly
  std::uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.try_push(std::uint64_t{next_in})) ++next_in;
    EXPECT_EQ(ring.size(), ring.capacity());
    std::uint64_t out;
    while (ring.try_pop(out)) {
      EXPECT_EQ(out, next_out);
      ++next_out;
    }
    EXPECT_TRUE(ring.empty());
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_EQ(next_in, 1000u * ring.capacity());
}

TEST(SpscRingTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  EXPECT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

// Two-thread stress: one producer, one consumer, a deliberately tiny ring
// so both the full and empty paths (and the cached-index refreshes) are hit
// constantly. Every value must come out exactly once, in order.
TEST(SpscRingStressTest, ProducerConsumerInOrder) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(16);
  std::uint64_t bad_order = 0;

  std::thread consumer([&ring, &bad_order] {
    std::uint64_t expected = 0;
    while (expected < kCount) {
      std::uint64_t out;
      if (ring.try_pop(out)) {
        if (out != expected) ++bad_order;
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount;) {
    if (ring.try_push(std::uint64_t{i})) {
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  EXPECT_EQ(bad_order, 0u);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace sda::sim
