#include "sim/inline_action.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

namespace sda::sim {
namespace {

TEST(InlineAction, EmptyIsFalsy) {
  InlineAction action;
  EXPECT_FALSE(action);
  EXPECT_FALSE(action.heap_allocated());
}

TEST(InlineAction, SmallCaptureStaysInline) {
  int hits = 0;
  InlineAction action{[&hits] { ++hits; }};
  ASSERT_TRUE(action);
  EXPECT_FALSE(action.heap_allocated());
  action();
  action();
  EXPECT_EQ(hits, 2);
}

TEST(InlineAction, CaptureAtTheBudgetStaysInline) {
  // Exactly kInlineSize bytes of capture must not spill.
  std::array<std::uint8_t, InlineAction::kInlineSize> payload{};
  payload[0] = 7;
  static_assert(InlineAction::fits_inline<decltype([payload] { (void)payload; })>);
  InlineAction action{[payload] { (void)payload; }};
  EXPECT_FALSE(action.heap_allocated());
  action();
}

TEST(InlineAction, OversizedCaptureSpillsToHeapAndStillRuns) {
  std::array<std::uint8_t, 128> payload{};
  payload[127] = 42;
  int seen = 0;
  auto big = [payload, &seen] { seen = payload[127]; };
  static_assert(!InlineAction::fits_inline<decltype(big)>);
  InlineAction action{std::move(big)};
  EXPECT_TRUE(action.heap_allocated());
  action();
  EXPECT_EQ(seen, 42);
}

TEST(InlineAction, MoveTransfersInlineCallable) {
  int hits = 0;
  InlineAction source{[&hits] { ++hits; }};
  InlineAction target{std::move(source)};
  EXPECT_FALSE(source);  // NOLINT(bugprone-use-after-move): post-move state is specified
  ASSERT_TRUE(target);
  target();
  EXPECT_EQ(hits, 1);
}

TEST(InlineAction, MoveStealsHeapCallable) {
  std::array<std::uint8_t, 128> payload{};
  int hits = 0;
  InlineAction source{[payload, &hits] { ++hits; (void)payload; }};
  InlineAction target{std::move(source)};
  EXPECT_FALSE(source);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(target.heap_allocated());
  target();
  EXPECT_EQ(hits, 1);
}

TEST(InlineAction, MoveAssignDestroysPreviousCallable) {
  const auto tracker = std::make_shared<int>(0);
  InlineAction holder{[tracker] { (void)tracker; }};
  EXPECT_EQ(tracker.use_count(), 2);
  holder = InlineAction{[] {}};
  EXPECT_EQ(tracker.use_count(), 1);  // old capture destroyed exactly once
  holder();
}

TEST(InlineAction, DestructorReleasesCapture) {
  const auto tracker = std::make_shared<int>(0);
  {
    InlineAction action{[tracker] { (void)tracker; }};
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(InlineAction, ResetEmptiesWithoutInvoking) {
  const auto tracker = std::make_shared<int>(0);
  InlineAction action{[tracker] { ++*tracker; }};
  action.reset();
  EXPECT_FALSE(action);
  EXPECT_EQ(*tracker, 0);
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(InlineAction, MovedThroughChainInvokesOnce) {
  int hits = 0;
  InlineAction a{[&hits] { ++hits; }};
  InlineAction b{std::move(a)};
  InlineAction c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace sda::sim
