#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sda::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime{Duration{300}}, [&] { order.push_back(3); });
  sim.schedule_at(SimTime{Duration{100}}, [&] { order.push_back(1); });
  sim.schedule_at(SimTime{Duration{200}}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime{Duration{300}});
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(SimTime{Duration{50}}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterIsRelativeToNow) {
  Simulator sim;
  SimTime inner_seen;
  sim.schedule_at(SimTime{Duration{1000}}, [&] {
    sim.schedule_after(Duration{500}, [&] { inner_seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_seen, SimTime{Duration{1500}});
}

TEST(Simulator, SchedulingIntoThePastClampsToNow) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime{Duration{1000}}, [&] {
    sim.schedule_at(SimTime{Duration{10}}, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, SimTime{Duration{1000}});
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventHandle handle = sim.schedule_at(SimTime{Duration{100}}, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(handle));
  EXPECT_FALSE(sim.cancel(handle));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelDefaultHandleIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime{Duration{100}}, [&] { order.push_back(1); });
  sim.schedule_at(SimTime{Duration{200}}, [&] { order.push_back(2); });
  sim.schedule_at(SimTime{Duration{201}}, [&] { order.push_back(3); });
  sim.run_until(SimTime{Duration{200}});
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), SimTime{Duration{200}});
  sim.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(SimTime{Duration{5000}});
  EXPECT_EQ(sim.now(), SimTime{Duration{5000}});
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime{Duration{1}}, [&] { ++count; });
  sim.schedule_at(SimTime{Duration{2}}, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsScheduledDuringRunAreExecuted) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(Duration{10}, recurse);
  };
  sim.schedule_after(Duration{10}, recurse);
  const std::size_t executed = sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(executed, 10u);
}

TEST(Simulator, ExecutedCounterTracks) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(Duration{i}, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, CancelledEventsDontAdvanceClock) {
  Simulator sim;
  const auto h = sim.schedule_at(SimTime{Duration{10'000}}, [] {});
  sim.schedule_at(SimTime{Duration{5}}, [] {});
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(sim.now(), SimTime{Duration{5}});
}

TEST(Simulator, CancelFromInsideAnEvent) {
  Simulator sim;
  bool second_ran = false;
  EventHandle second;
  sim.schedule_at(SimTime{Duration{10}}, [&] { EXPECT_TRUE(sim.cancel(second)); });
  second = sim.schedule_at(SimTime{Duration{20}}, [&] { second_ran = true; });
  sim.run();
  EXPECT_FALSE(second_ran);
}

TEST(Simulator, CancelSameTimeLaterEvent) {
  // Cancelling an event scheduled at the *same* timestamp as the currently
  // executing one must still work (insertion order breaks the tie).
  Simulator sim;
  int ran = 0;
  EventHandle peer;
  sim.schedule_at(SimTime{Duration{10}}, [&] {
    ++ran;
    sim.cancel(peer);
  });
  peer = sim.schedule_at(SimTime{Duration{10}}, [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, ManyCancellationsStayConsistent) {
  Simulator sim;
  int ran = 0;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(sim.schedule_at(SimTime{Duration{i}}, [&] { ++ran; }));
  }
  for (int i = 0; i < 1000; i += 2) sim.cancel(handles[static_cast<std::size_t>(i)]);
  sim.run();
  EXPECT_EQ(ran, 500);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelAfterExecutionIsRejected) {
  // A handle whose event already ran must not be cancellable: accepting it
  // used to corrupt the cancelled-event bookkeeping and underflow
  // pending_events() on later runs.
  Simulator sim;
  const EventHandle ran = sim.schedule_at(SimTime{Duration{10}}, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(ran));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, PendingEventsAccurateAcrossCancelRunCancel) {
  Simulator sim;
  const EventHandle first = sim.schedule_at(SimTime{Duration{10}}, [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.cancel(first));  // already executed
  EXPECT_EQ(sim.pending_events(), 0u);

  const EventHandle second = sim.schedule_at(SimTime{Duration{20}}, [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(sim.cancel(second));
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.cancel(second));  // double cancel stays a no-op
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelExecutedHandleDoesNotEatPendingEvents) {
  // Regression: cancel(executed-handle) + a live queue entry used to make
  // pending_events() report one less than reality.
  Simulator sim;
  const EventHandle done = sim.schedule_at(SimTime{Duration{1}}, [] {});
  sim.run();
  bool ran = false;
  sim.schedule_at(SimTime{Duration{2}}, [&] { ran = true; });
  EXPECT_FALSE(sim.cancel(done));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, StaleHandleAfterSlotReuseIsRejected) {
  // The executed event's slot is recycled for the next schedule; the old
  // handle must not be able to cancel the slot's new occupant (generation
  // stamps tell them apart).
  Simulator sim;
  const EventHandle first = sim.schedule_at(SimTime{Duration{10}}, [] {});
  sim.run();
  bool ran = false;
  sim.schedule_at(SimTime{Duration{20}}, [&] { ran = true; });  // reuses the slot
  EXPECT_FALSE(sim.cancel(first));
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, CancelledSlotReuseKeepsNewEventLive) {
  // Same as above but the slot is freed by cancel() rather than execution,
  // and the stale queue entry is still in the heap when the slot is reused.
  Simulator sim;
  bool first_ran = false;
  bool second_ran = false;
  const EventHandle first = sim.schedule_at(SimTime{Duration{10}}, [&] { first_ran = true; });
  EXPECT_TRUE(sim.cancel(first));
  const EventHandle second = sim.schedule_at(SimTime{Duration{10}}, [&] { second_ran = true; });
  EXPECT_FALSE(sim.cancel(first));  // stale generation on the recycled slot
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_FALSE(first_ran);
  EXPECT_TRUE(second_ran);
  EXPECT_FALSE(sim.cancel(second));  // executed
}

TEST(Simulator, ManyRecyclesKeepStaleHandlesInert) {
  Simulator sim;
  std::vector<EventHandle> stale;
  int ran = 0;
  for (int round = 0; round < 100; ++round) {
    stale.push_back(sim.schedule_at(SimTime{Duration{round}}, [&] { ++ran; }));
    sim.run();
  }
  EXPECT_EQ(ran, 100);
  bool live_ran = false;
  sim.schedule_at(SimTime{Duration{1000}}, [&] { live_ran = true; });
  for (const EventHandle& h : stale) EXPECT_FALSE(sim.cancel(h));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_TRUE(live_ran);
}

TEST(SimTime, ArithmeticAndFormatting) {
  const SimTime t{std::chrono::seconds{3723} + std::chrono::milliseconds{45}};
  EXPECT_DOUBLE_EQ(t.seconds(), 3723.045);
  EXPECT_EQ(t.to_string(), "1:02:03.045");
  EXPECT_EQ((t + Duration{std::chrono::seconds{1}}) - t, Duration{std::chrono::seconds{1}});
}

TEST(SimTime, HoursHelper) {
  const SimTime t{std::chrono::hours{30}};
  EXPECT_DOUBLE_EQ(t.hours(), 30.0);
}

}  // namespace
}  // namespace sda::sim
