#include "sim/sharded.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

namespace sda::sim {
namespace {

using std::chrono::microseconds;

SimTime at_us(std::int64_t us) { return SimTime{} + microseconds{us}; }

TEST(ShardedSimulatorTest, SingleShardDelegatesToInnerSimulator) {
  ShardedSimulator core(ShardedConfig{.shards = 1, .workers = 4});
  EXPECT_EQ(core.shard_count(), 1u);
  EXPECT_EQ(core.worker_count(), 1u);  // clamped to shard count
  int runs = 0;
  core.post(0, 0, at_us(10), [&runs] { ++runs; });
  core.shard(0).schedule_at(at_us(5), [&runs] { ++runs; });
  EXPECT_EQ(core.run(), 2u);
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(core.now(), at_us(10));
  EXPECT_EQ(core.cross_posts(), 0u);
  EXPECT_EQ(core.windows(), 0u);  // no windowing on the fast path
}

TEST(ShardedSimulatorTest, CrossShardPostArrivesAtItsTimestamp) {
  ShardedSimulator core(
      ShardedConfig{.shards = 2, .workers = 1, .lookahead = microseconds{100}});
  std::vector<std::int64_t> seen;
  core.shard(0).schedule_at(at_us(10), [&core, &seen] {
    seen.push_back(core.shard(0).now().since_start().count());
    core.post(0, 1, core.shard(0).now() + microseconds{150}, [&core, &seen] {
      seen.push_back(core.shard(1).now().since_start().count());
    });
  });
  core.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 10'000);   // 10 us, in ns
  EXPECT_EQ(seen[1], 160'000);  // sent at 10 us + 150 us delay
  EXPECT_EQ(core.cross_posts(), 1u);
  EXPECT_EQ(core.late_posts(), 0u);
  EXPECT_GE(core.windows(), 1u);
}

TEST(ShardedSimulatorTest, RunUntilAdvancesAllShardClocks) {
  ShardedSimulator core(
      ShardedConfig{.shards = 2, .workers = 1, .lookahead = microseconds{100}});
  int runs = 0;
  core.shard(0).schedule_at(at_us(50), [&runs] { ++runs; });
  core.shard(1).schedule_at(at_us(500), [&runs] { ++runs; });
  EXPECT_EQ(core.run_until(at_us(200)), 1u);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(core.now(), at_us(200));
  EXPECT_EQ(core.shard(0).now(), at_us(200));
  EXPECT_EQ(core.shard(1).now(), at_us(200));
  // The later event is still pending and runs on the next call.
  EXPECT_EQ(core.run_until(at_us(1000)), 1u);
  EXPECT_EQ(runs, 2);
}

TEST(ShardedSimulatorTest, PingPongAcrossShardsDrainsCompletely) {
  ShardedSimulator core(
      ShardedConfig{.shards = 2, .workers = 2, .lookahead = microseconds{10}});
  std::uint64_t bounces = 0;
  // A self-sustaining ping-pong: each arrival re-posts to the other shard
  // lookahead later, for a fixed number of bounces.
  struct Bouncer {
    ShardedSimulator* core;
    std::uint64_t* bounces;
    void operator()(std::size_t me, std::uint32_t remaining) const {
      ++*bounces;
      if (remaining == 0) return;
      const std::size_t other = 1 - me;
      auto self = *this;
      core->post(me, other, core->shard(me).now() + microseconds{10},
                 [self, other, remaining] { self(other, remaining - 1); });
    }
  };
  Bouncer bouncer{&core, &bounces};
  core.shard(0).schedule_at(at_us(1), [bouncer] { bouncer(0, 100); });
  core.run();
  EXPECT_EQ(bounces, 101u);
  EXPECT_EQ(core.cross_posts(), 100u);
  EXPECT_EQ(core.late_posts(), 0u);
}

TEST(ShardedSimulatorTest, RingOverflowSpillsLosslessly) {
  // Ring capacity 2 (the minimum); a burst of 100 cross posts in one event
  // must all arrive via the overflow spill, in timestamp/seq order.
  ShardedSimulator core(ShardedConfig{
      .shards = 2, .workers = 1, .lookahead = microseconds{10}, .ring_capacity = 2});
  std::vector<int> order;
  core.shard(0).schedule_at(at_us(1), [&core, &order] {
    for (int i = 0; i < 100; ++i) {
      core.post(0, 1, core.shard(0).now() + microseconds{10},
                [&order, i] { order.push_back(i); });
    }
  });
  core.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  EXPECT_GT(core.overflow_posts(), 0u);
  EXPECT_EQ(core.late_posts(), 0u);
}

TEST(ShardedSimulatorTest, MergeOrderIsDeterministicAcrossWorkerCounts) {
  // Many shards posting into shard 0 with colliding timestamps: the
  // arrival order at shard 0 must be identical for any worker count.
  auto run_one = [](std::size_t workers) {
    ShardedSimulator core(ShardedConfig{
        .shards = 4, .workers = workers, .lookahead = microseconds{50}});
    std::vector<std::uint64_t> arrivals;
    for (std::size_t s = 1; s < 4; ++s) {
      core.shard(s).schedule_at(at_us(static_cast<std::int64_t>(s)),
                                [&core, &arrivals, s] {
                                  for (std::uint64_t k = 0; k < 8; ++k) {
                                    core.post(s, 0, at_us(200),
                                              [&arrivals, s, k] {
                                                arrivals.push_back(s * 100 + k);
                                              });
                                  }
                                });
    }
    core.run();
    return arrivals;
  };
  const auto w1 = run_one(1);
  const auto w2 = run_one(2);
  const auto w4 = run_one(4);
  ASSERT_EQ(w1.size(), 24u);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w4);
  // And the order itself is (when, from-shard, seq): shard 1's posts first.
  EXPECT_EQ(w1.front(), 100u);
  EXPECT_EQ(w1.back(), 307u);
}

TEST(ShardedSimulatorTest, LatePostIsClampedAndCounted) {
  ShardedSimulator core(
      ShardedConfig{.shards = 2, .workers = 1, .lookahead = microseconds{100}});
  // Violate the lookahead contract on purpose: post below target now().
  bool ran = false;
  core.shard(0).schedule_at(at_us(10), [&core, &ran] {
    core.post(0, 1, at_us(0), [&ran] { ran = true; });
  });
  core.shard(1).schedule_at(at_us(500), [] {});  // keeps shard 1's clock ahead
  core.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(core.late_posts(), 1u);
}

TEST(ShardedSimulatorTest, ExecutedEventsSumsAcrossShards) {
  ShardedSimulator core(
      ShardedConfig{.shards = 3, .workers = 3, .lookahead = microseconds{10}});
  for (std::size_t s = 0; s < 3; ++s) {
    for (int i = 0; i < 5; ++i) {
      core.shard(s).schedule_at(at_us(i + 1), [] {});
    }
  }
  EXPECT_EQ(core.run(), 15u);
  EXPECT_EQ(core.executed_events(), 15u);
}

}  // namespace
}  // namespace sda::sim
