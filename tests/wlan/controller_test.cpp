// WLAN layer tests: centralized control plane with distributed vs
// centralized data plane (paper §2 "Mobility", Table 1).
#include "wlan/controller.hpp"

#include <gtest/gtest.h>

namespace sda::wlan {
namespace {

using net::GroupId;
using net::MacAddress;
using net::VnId;

constexpr VnId kVn{100};

MacAddress mac(std::uint64_t i) { return MacAddress::from_u64(0x0200'0000'0000ull | i); }

struct WlanFixture : ::testing::Test {
  void build(DataPlaneMode mode) {
    fabric = std::make_unique<fabric::SdaFabric>(sim, fabric::FabricConfig{});
    fabric->add_border("b0");
    for (const char* e : {"e0", "e1", "e-anchor"}) {
      fabric->add_edge(e);
      fabric->link(e, "b0");
    }
    fabric->finalize();
    fabric->define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

    WlanConfig config;
    config.mode = mode;
    config.controller_edge = "e-anchor";
    wlc = std::make_unique<WlanController>(*fabric, config);
    wlc->add_access_point({"ap-0", "e0", 1});
    wlc->add_access_point({"ap-1", "e1", 1});

    for (std::uint64_t i = 0; i < 3; ++i) {
      fabric::EndpointDefinition def;
      def.credential = "sta" + std::to_string(i);
      def.secret = "pw";
      def.mac = mac(i);
      def.vn = kVn;
      def.group = GroupId{10};
      fabric->provision_endpoint(def);
    }
    fabric->set_delivery_listener([this](const dataplane::AttachedEndpoint& e,
                                         const net::OverlayFrame&, sim::SimTime at) {
      deliveries.emplace_back(e.credential, at);
    });
  }

  AssociationResult associate(const std::string& credential, const std::string& ap) {
    AssociationResult result;
    wlc->associate(credential, ap, [&](const AssociationResult& r) { result = r; });
    sim.run();
    return result;
  }

  sim::Simulator sim;
  std::unique_ptr<fabric::SdaFabric> fabric;
  std::unique_ptr<WlanController> wlc;
  std::vector<std::pair<std::string, sim::SimTime>> deliveries;
};

TEST_F(WlanFixture, DistributedAssociationOnboardsAtApEdge) {
  build(DataPlaneMode::Distributed);
  const auto r = associate("sta0", "ap-0");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(fabric->location_of(mac(0)), "e0");
  EXPECT_EQ(wlc->ap_of(mac(0)), "ap-0");
  EXPECT_EQ(wlc->station_count(), 1u);
}

TEST_F(WlanFixture, CentralizedAssociationAnchorsAtController) {
  build(DataPlaneMode::Centralized);
  const auto r = associate("sta0", "ap-0");
  ASSERT_TRUE(r.success);
  // Data-plane identity lives at the anchor, regardless of the AP's edge.
  EXPECT_EQ(fabric->location_of(mac(0)), "e-anchor");
  EXPECT_EQ(wlc->ap_of(mac(0)), "ap-0");
}

TEST_F(WlanFixture, DistributedTrafficGoesDirect) {
  build(DataPlaneMode::Distributed);
  associate("sta0", "ap-0");
  const auto r1 = associate("sta1", "ap-1");
  EXPECT_TRUE(wlc->station_send_udp(mac(0), r1.ip, 443, 256));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].first, "sta1");
  EXPECT_EQ(wlc->stats().frames_tunneled, 0u);  // nothing through the WLC
}

TEST_F(WlanFixture, CentralizedTrafficTunnelsThroughController) {
  build(DataPlaneMode::Centralized);
  associate("sta0", "ap-0");
  const auto r1 = associate("sta1", "ap-1");
  EXPECT_TRUE(wlc->station_send_udp(mac(0), r1.ip, 443, 256));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(wlc->stats().frames_tunneled, 1u);
  EXPECT_EQ(wlc->stats().bytes_tunneled, 256u);
  EXPECT_GT(wlc->stats().busy_time.count(), 0);
}

TEST_F(WlanFixture, TriangularRoutingCostsLatency) {
  // Same flow, both modes: centralized must be slower end-to-end because
  // of the AP->controller tunnel detour (the paper's triangular routing).
  build(DataPlaneMode::Distributed);
  associate("sta0", "ap-0");
  const auto dst_d = associate("sta1", "ap-1");
  // Warm the map cache so we measure steady-state latency, not resolution.
  wlc->station_send_udp(mac(0), dst_d.ip, 443, 256);
  sim.run();
  const sim::SimTime t0 = sim.now();
  wlc->station_send_udp(mac(0), dst_d.ip, 443, 256);
  sim.run();
  const auto direct_latency = deliveries.back().second - t0;

  build(DataPlaneMode::Centralized);  // fresh fabric + controller
  deliveries.clear();
  associate("sta0", "ap-0");
  const auto dst_c = associate("sta1", "ap-1");
  wlc->station_send_udp(mac(0), dst_c.ip, 443, 256);
  sim.run();
  const sim::SimTime t1 = sim.now();
  wlc->station_send_udp(mac(0), dst_c.ip, 443, 256);
  sim.run();
  const auto tunneled_latency = deliveries.back().second - t1;

  EXPECT_GT(tunneled_latency, direct_latency);
}

TEST_F(WlanFixture, DistributedRoamReRegisters) {
  build(DataPlaneMode::Distributed);
  associate("sta0", "ap-0");
  AssociationResult roamed;
  wlc->roam(mac(0), "ap-1", [&](const AssociationResult& r) { roamed = r; });
  sim.run();
  ASSERT_TRUE(roamed.success);
  EXPECT_EQ(fabric->location_of(mac(0)), "e1");
  EXPECT_EQ(wlc->ap_of(mac(0)), "ap-1");
  EXPECT_EQ(wlc->stats().roams, 1u);
}

TEST_F(WlanFixture, CentralizedRoamKeepsAnchor) {
  build(DataPlaneMode::Centralized);
  associate("sta0", "ap-0");
  AssociationResult roamed;
  wlc->roam(mac(0), "ap-1", [&](const AssociationResult& r) { roamed = r; });
  sim.run();
  ASSERT_TRUE(roamed.success);
  EXPECT_EQ(fabric->location_of(mac(0)), "e-anchor");  // unchanged
  EXPECT_EQ(wlc->ap_of(mac(0)), "ap-1");
}

TEST_F(WlanFixture, CentralizedRoamIsFasterButPathStaysBent) {
  // The legacy architecture's one advantage: a roam is only a key hand-off.
  build(DataPlaneMode::Centralized);
  associate("sta0", "ap-0");
  AssociationResult central_roam;
  wlc->roam(mac(0), "ap-1", [&](const AssociationResult& r) { central_roam = r; });
  sim.run();

  build(DataPlaneMode::Distributed);
  associate("sta0", "ap-0");
  AssociationResult distributed_roam;
  wlc->roam(mac(0), "ap-1", [&](const AssociationResult& r) { distributed_roam = r; });
  sim.run();

  EXPECT_LT(central_roam.elapsed, distributed_roam.elapsed);
}

TEST_F(WlanFixture, StationDeliveryIncludesDownstreamTunnel) {
  build(DataPlaneMode::Centralized);
  associate("sta0", "ap-0");
  const auto r1 = associate("sta1", "ap-1");

  sim::SimTime fabric_delivery, station_delivery;
  // Raw fabric listener first (times arrival at the anchor only)...
  fabric->set_delivery_listener([&](const dataplane::AttachedEndpoint&,
                                    const net::OverlayFrame&, sim::SimTime at) {
    fabric_delivery = at;
  });
  const sim::SimTime t0 = sim.now();
  wlc->station_send_udp(mac(0), r1.ip, 443, 128);
  sim.run();
  ASSERT_GT(fabric_delivery.nanoseconds(), 0);
  const sim::Duration upstream_only = fabric_delivery - t0;

  // ...then the station-level listener, which adds the anchor->AP leg.
  wlc->set_station_delivery_listener([&](const dataplane::AttachedEndpoint&,
                                         const net::OverlayFrame&, sim::SimTime at) {
    station_delivery = at;
  });
  const sim::SimTime t1 = sim.now();
  wlc->station_send_udp(mac(0), r1.ip, 443, 128);
  sim.run();
  ASSERT_GT(station_delivery.nanoseconds(), 0);
  EXPECT_GT(station_delivery - t1, upstream_only);
}

TEST_F(WlanFixture, DisassociateWithdraws) {
  build(DataPlaneMode::Distributed);
  associate("sta0", "ap-0");
  wlc->disassociate(mac(0));
  sim.run();
  EXPECT_EQ(wlc->station_count(), 0u);
  EXPECT_EQ(fabric->location_of(mac(0)), std::nullopt);
  EXPECT_FALSE(wlc->station_send_udp(mac(0), net::Ipv4Address{10, 100, 0, 9}, 443, 10));
}

TEST_F(WlanFixture, UnknownApThrows) {
  build(DataPlaneMode::Distributed);
  EXPECT_THROW(wlc->associate("sta0", "ap-9"), std::invalid_argument);
  associate("sta0", "ap-0");
  EXPECT_THROW(wlc->roam(mac(0), "ap-9"), std::invalid_argument);
  EXPECT_THROW(wlc->roam(mac(2), "ap-1"), std::invalid_argument);
}

}  // namespace
}  // namespace sda::wlan
